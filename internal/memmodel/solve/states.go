package solve

import (
	"context"
	"sort"
	"strconv"
	"time"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
	"rats/internal/memmodel/telemetry"
)

// checkStride mirrors the enumerator's cancellation/budget polling
// stride: cheap enough to vanish from profiles, frequent enough that
// deadlines are honored promptly.
const checkStride = 256

// oneChoice is the value-choice list of non-quantum accesses.
var oneChoice = []int64{0}

// stateSearch computes the SC result set of the quantum-equivalent
// program by memoized DFS over (pc vector, memory, registers) states —
// the solver's replacement for enumerating executions when only final
// states (not race witnesses) are needed. Unlike the enumerator, which
// distinguishes interleavings, states that converge are explored once:
// heavily contended programs whose interleaving count is factorial
// collapse to a polynomial state count.
//
// Memo keys are canonicalized under thread symmetry: threads with
// identical op lists contribute their (pc, registers) sub-keys as a
// sorted multiset, which is sound for final-memory sets because
// permuting identical threads is a program automorphism that fixes
// memory.
//
// DPLL vocabulary for the telemetry counters: a state with more than
// one enabled (thread, value-choice) move is a decision; a forced
// single-move state is a propagation; a memo hit is a conflict (the
// branch closes without new information); each memoized state is a
// learned entry.
type stateSearch struct {
	p      *litmus.Program
	tel    *telemetry.Check
	ctx    context.Context
	start  time.Time
	domain []int64

	// budgetLeft implements EnumOptions.TransitionLimit for this search
	// phase: debited in checkStride-sized strides, <= 0 trips a
	// *LimitError with Phase "solve". hasBudget gates it.
	budgetLeft  int64
	budgetLimit int64
	hasBudget   bool

	locs   []litmus.Loc
	sorted []int   // location indices in name order (ResultKey order)
	locIdx [][]int // [t][opIndex] location index, -1 for branches

	classThreads [][]int

	pc   []int
	mem  []int64
	regs [][]int64

	seen    map[string]struct{}
	results map[string]bool

	keyBuf []byte
	resBuf []byte
	subs   []string

	decisions, propagations, memoHits, learned int64
	moves                                      int64
	sinceCheck                                 int
	err                                        error
}

func newStateSearch(p *litmus.Program, opts memmodel.CheckOptions, classThreads [][]int, tel *telemetry.Check) *stateSearch {
	s := &stateSearch{
		p: p, tel: tel, ctx: opts.Ctx, start: time.Now(),
		domain:       memmodel.QuantumDomain(p),
		classThreads: classThreads,
		pc:           make([]int, len(p.Threads)),
		regs:         make([][]int64, len(p.Threads)),
		seen:         map[string]struct{}{},
		results:      map[string]bool{},
	}
	if opts.TransitionLimit > 0 {
		s.hasBudget = true
		s.budgetLeft = opts.TransitionLimit
		s.budgetLimit = opts.TransitionLimit
	}
	s.locs = p.Locs()
	idx := make(map[litmus.Loc]int, len(s.locs))
	for i, l := range s.locs {
		idx[l] = i
	}
	s.sorted = make([]int, len(s.locs))
	for i := range s.sorted {
		s.sorted[i] = i
	}
	sort.Slice(s.sorted, func(a, b int) bool { return s.locs[s.sorted[a]] < s.locs[s.sorted[b]] })
	s.mem = make([]int64, len(s.locs))
	for i, l := range s.locs {
		s.mem[i] = p.Init[l]
	}
	s.locIdx = make([][]int, len(p.Threads))
	for t := range p.Threads {
		th := p.Threads[t]
		s.regs[t] = make([]int64, th.NumRegs())
		s.locIdx[t] = make([]int, len(th.Ops))
		for oi := range th.Ops {
			if th.Ops[oi].IsBranch {
				s.locIdx[t][oi] = -1
			} else {
				s.locIdx[t][oi] = idx[th.Ops[oi].Loc]
			}
		}
	}
	return s
}

// flush folds the search's counter shards into the telemetry block.
func (s *stateSearch) flush() {
	s.tel.AddTransitions(s.moves)
	s.tel.AddMemoHits(s.memoHits)
	s.moves = 0
}

// checkpoint polls the cancellation context and debits the transition
// budget; it reports whether the search may continue.
func (s *stateSearch) checkpoint() bool {
	if s.ctx != nil {
		if cerr := s.ctx.Err(); cerr != nil {
			s.err = &memmodel.CancelError{
				Prog: s.p.Name, Phase: "solve",
				Elapsed: time.Since(s.start), Err: cerr,
			}
			return false
		}
	}
	if s.hasBudget {
		s.budgetLeft -= checkStride
		if s.budgetLeft <= 0 {
			s.flush()
			le := &memmodel.LimitError{
				Prog: s.p.Name, Phase: "solve",
				Limit:   int(s.budgetLimit),
				Elapsed: time.Since(s.start),
			}
			if s.tel != nil {
				rec := s.tel.Record()
				le.Telemetry = &rec
			}
			s.err = le
			return false
		}
	}
	return true
}

// run is the DFS over states. Branch markers and failed-guard ops are
// consumed eagerly exactly as the enumerator's step does (guard
// outcomes depend only on the thread's own registers, fixed once the
// thread reaches the op), so they never multiply states.
func (s *stateSearch) run() {
	if s.err != nil {
		return
	}
	s.sinceCheck++
	if s.sinceCheck >= checkStride {
		s.sinceCheck = 0
		if !s.checkpoint() {
			return
		}
	}
	done := true
	for t := range s.p.Threads {
		ops := s.p.Threads[t].Ops
		if s.pc[t] < len(ops) {
			done = false
			op := &ops[s.pc[t]]
			if op.IsBranch || (len(op.Guards) > 0 && !op.GuardsHold(s.regs[t])) {
				s.pc[t]++
				s.run()
				s.pc[t]--
				return
			}
		}
	}
	if done {
		s.results[s.resultKey()] = true
		return
	}

	// The state is normalized (every thread head is a visible op):
	// memoize it.
	key := s.stateKey()
	if _, ok := s.seen[key]; ok {
		s.memoHits++
		return
	}
	s.seen[key] = struct{}{}
	s.learned++

	// Count the enabled (thread, value-choice) moves to classify the
	// state as a decision (branching) or a propagation (forced).
	enabled := 0
	for t := range s.p.Threads {
		ops := s.p.Threads[t].Ops
		if s.pc[t] >= len(ops) {
			continue
		}
		nl, ns := s.choiceCounts(&ops[s.pc[t]])
		enabled += nl * ns
	}
	if enabled > 1 {
		s.decisions++
	} else {
		s.propagations++
	}

	for t := range s.p.Threads {
		ops := s.p.Threads[t].Ops
		if s.pc[t] >= len(ops) {
			continue
		}
		oi := s.pc[t]
		op := &ops[oi]
		loads, stores := oneChoice, oneChoice
		if op.Class == core.Quantum {
			if op.Reads() {
				loads = s.domain
			}
			if op.Writes() {
				stores = s.domain
			}
		}
		for _, lv := range loads {
			for _, sv := range stores {
				s.execOne(t, oi, op, lv, sv)
				if s.err != nil {
					return
				}
			}
		}
	}
}

// choiceCounts returns the quantum value-choice fan-out of op.
func (s *stateSearch) choiceCounts(op *litmus.Op) (loads, stores int) {
	loads, stores = 1, 1
	if op.Class == core.Quantum {
		if op.Reads() {
			loads = len(s.domain)
		}
		if op.Writes() {
			stores = len(s.domain)
		}
	}
	return loads, stores
}

// execOne applies one (thread, value-choice) move, recurses, and
// undoes it — value semantics identical to the enumerator's execOne.
func (s *stateSearch) execOne(t, oi int, op *litmus.Op, qload, qstore int64) {
	s.moves++
	loc := s.locIdx[t][oi]
	oldMem := s.mem[loc]
	var oldReg int64
	if op.Dst != litmus.NoReg {
		oldReg = s.regs[t][op.Dst]
	}
	quantum := op.Class == core.Quantum
	loaded := oldMem
	if quantum && op.Reads() {
		loaded = qload
	}
	if op.Dst != litmus.NoReg {
		s.regs[t][op.Dst] = loaded
	}
	if op.Writes() {
		var newVal int64
		if quantum {
			newVal = qstore
		} else {
			operand := op.Operand.Eval(s.regs[t])
			expected := op.Expected.Eval(s.regs[t])
			newVal = op.AOp.Apply(oldMem, operand, expected)
		}
		s.mem[loc] = newVal
	}
	s.pc[t]++

	s.run()

	s.pc[t]--
	if op.Writes() {
		s.mem[loc] = oldMem
	}
	if op.Dst != litmus.NoReg {
		s.regs[t][op.Dst] = oldReg
	}
}

// stateKey serializes the normalized state, canonicalizing thread
// symmetry: within each class of identical threads the per-thread
// (pc, registers) sub-keys are sorted, so states that differ only by a
// permutation of interchangeable threads share one memo entry.
func (s *stateSearch) stateKey() string {
	b := s.keyBuf[:0]
	for _, v := range s.mem {
		b = strconv.AppendInt(b, v, 10)
		b = append(b, ',')
	}
	for _, ts := range s.classThreads {
		b = append(b, '|')
		if len(ts) == 1 {
			b = s.appendThread(b, ts[0])
			continue
		}
		s.subs = s.subs[:0]
		for _, t := range ts {
			s.subs = append(s.subs, string(s.appendThread(nil, t)))
		}
		sort.Strings(s.subs)
		for _, sub := range s.subs {
			b = append(b, ';')
			b = append(b, sub...)
		}
	}
	s.keyBuf = b
	return string(b)
}

// appendThread serializes one thread's (pc, registers) sub-key.
func (s *stateSearch) appendThread(b []byte, t int) []byte {
	b = strconv.AppendInt(b, int64(s.pc[t]), 10)
	for _, r := range s.regs[t] {
		b = append(b, ':')
		b = strconv.AppendInt(b, r, 10)
	}
	return b
}

// resultKey serializes the final memory exactly as
// Execution.ResultKey/memmodel.FinalResultKey do.
func (s *stateSearch) resultKey() string {
	b := s.resBuf[:0]
	for _, li := range s.sorted {
		b = append(b, s.locs[li]...)
		b = append(b, '=')
		b = strconv.AppendInt(b, s.mem[li], 10)
		b = append(b, ';')
	}
	s.resBuf = b
	return string(b)
}
