#!/usr/bin/env python3
"""Parse `go test -bench` output into BENCH_*.json and gate regressions.

Usage:
  benchjson.py parse OUT.json FILE [FILE...]
      Parse benchmark text output (as produced by `go test -bench ...
      -benchmem | tee file`) into a JSON report: one entry per benchmark
      with every reported metric (ns/op, B/op, allocs/op, and custom
      metrics such as cycles/sec, allocs/cycle, execs).

  benchjson.py check NEW.json BASELINE.json
      Fail (exit 1) when NEW regresses against BASELINE:
        * cycles/sec: each benchmark's throughput is normalized by the
          run's own reference benchmark (BenchmarkSystemRun/H/noskip) to
          factor out raw machine speed, then compared: a normalized drop
          of more than 10% fails.
        * idle-heavy skip/noskip speedup must stay >= 2x (the event-driven
          skipping acceptance floor; machine-independent).
        * allocs/cycle on the idle-heavy skip variant must stay <= 0.05
          (the zero-allocation steady-state floor; machine-independent —
          the busy H variant is excluded because its short runs are
          dominated by one-time pool warm-up, not steady state).
      Race-classification gates (applied when the relation/analysis
      benchmarks are present in NEW; all machine-independent ratios):
        * BenchmarkAnalyze/<prog>/arena must stay at <= 2 allocs/op and
          the fresh/arena allocs ratio must stay >= 10x (the arena floor).
        * BenchmarkTransClosure and BenchmarkCompose bitset kernels must
          stay >= 4x faster than the []bool reference at every size.
        * BenchmarkCheckProgram/<prog>/streaming must not be slower than
          the materializing two-phase pipeline (5% tolerance).
"""

import json
import re
import sys

REFERENCE = "BenchmarkSystemRun/H/noskip"
SPEEDUP_NUM = "BenchmarkSystemRun/idle-heavy/skip"
SPEEDUP_DEN = "BenchmarkSystemRun/idle-heavy/noskip"
TOLERANCE = 0.10
MIN_SPEEDUP = 2.0
MAX_ALLOCS_PER_CYCLE = 0.05

# Race-classification (bitset kernel / streaming pipeline) floors.
MAX_ARENA_ALLOCS = 2.0
MIN_ARENA_ALLOC_RATIO = 10.0
MIN_KERNEL_SPEEDUP = 4.0
STREAMING_TOLERANCE = 0.05

LINE = re.compile(r"^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$")
METRIC = re.compile(r"([\d.e+]+)\s+(\S+)")


def parse(paths):
    out = []
    for path in paths:
        for line in open(path):
            m = LINE.match(line.strip())
            if not m:
                continue
            name, iters, rest = m.group(1), int(m.group(2)), m.group(3)
            metrics = {}
            for val, unit in METRIC.findall(rest):
                try:
                    metrics[unit] = float(val)
                except ValueError:
                    continue
            if metrics:
                out.append({"name": name, "iterations": iters, "metrics": metrics})
    return out


def by_name(report):
    return {b["name"]: b["metrics"] for b in report}


def check(new, base):
    newm, basem = by_name(new), by_name(base)
    failures = []

    def cps(table, name):
        return table.get(name, {}).get("cycles/sec")

    ref_new, ref_base = cps(newm, REFERENCE), cps(basem, REFERENCE)
    for name, metrics in basem.items():
        if "cycles/sec" not in metrics or name not in newm:
            continue
        if not ref_new or not ref_base:
            break
        base_norm = metrics["cycles/sec"] / ref_base
        got = cps(newm, name)
        if got is None:
            failures.append(f"{name}: cycles/sec metric missing from new run")
            continue
        new_norm = got / ref_new
        if new_norm < (1 - TOLERANCE) * base_norm:
            failures.append(
                f"{name}: normalized cycles/sec regressed "
                f"{base_norm:.3f} -> {new_norm:.3f} (>{TOLERANCE:.0%} drop)"
            )

    num, den = cps(newm, SPEEDUP_NUM), cps(newm, SPEEDUP_DEN)
    if num and den:
        speedup = num / den
        if speedup < MIN_SPEEDUP:
            failures.append(
                f"idle-heavy skip speedup {speedup:.2f}x < {MIN_SPEEDUP}x floor"
            )
        print(f"idle-heavy skip speedup: {speedup:.2f}x")

    apc = newm.get(SPEEDUP_NUM, {}).get("allocs/cycle")
    if apc is not None:
        print(f"idle-heavy skip allocs/cycle: {apc:.4f}")
        if apc > MAX_ALLOCS_PER_CYCLE:
            failures.append(
                f"{SPEEDUP_NUM}: {apc:.4f} allocs/cycle > {MAX_ALLOCS_PER_CYCLE} floor"
            )

    failures += check_raceclass(newm)

    for f in failures:
        print(f"REGRESSION: {f}", file=sys.stderr)
    return not failures


def check_raceclass(newm):
    """Machine-independent floors for the bitset relation kernels and the
    streaming race-classification pipeline. Each gate only fires when its
    benchmarks are present, so older baselines pass unchanged."""
    failures = []

    # Arena analysis: absolute allocs/op ceiling plus fresh/arena ratio.
    for name, metrics in sorted(newm.items()):
        if not (name.startswith("BenchmarkAnalyze/") and name.endswith("/arena")):
            continue
        allocs = metrics.get("allocs/op")
        if allocs is None:
            continue
        prog = name[len("BenchmarkAnalyze/"):-len("/arena")]
        print(f"analyze arena allocs/op [{prog}]: {allocs:.0f}")
        if allocs > MAX_ARENA_ALLOCS:
            failures.append(
                f"{name}: {allocs:.0f} allocs/op > {MAX_ARENA_ALLOCS:.0f} ceiling"
            )
        fresh = newm.get(f"BenchmarkAnalyze/{prog}/fresh", {}).get("allocs/op")
        if fresh is not None:
            ratio = fresh / max(allocs, 1.0)
            if ratio < MIN_ARENA_ALLOC_RATIO:
                failures.append(
                    f"{name}: fresh/arena allocs ratio {ratio:.1f}x "
                    f"< {MIN_ARENA_ALLOC_RATIO:.0f}x floor"
                )

    # Bitset kernels vs the retained []bool reference implementation.
    for name, metrics in sorted(newm.items()):
        if not name.endswith("/bitset"):
            continue
        ref = newm.get(name[: -len("/bitset")] + "/ref", {}).get("ns/op")
        got = metrics.get("ns/op")
        if not ref or not got:
            continue
        speedup = ref / got
        print(f"kernel speedup [{name[len('Benchmark'):-len('/bitset')]}]: {speedup:.1f}x")
        if speedup < MIN_KERNEL_SPEEDUP:
            failures.append(
                f"{name}: {speedup:.2f}x vs reference < {MIN_KERNEL_SPEEDUP}x floor"
            )

    # Streaming must dominate the two-phase materializing pipeline.
    for name, metrics in sorted(newm.items()):
        if not (name.startswith("BenchmarkCheckProgram/") and name.endswith("/streaming")):
            continue
        mat = newm.get(name[: -len("/streaming")] + "/materialize", {}).get("ns/op")
        got = metrics.get("ns/op")
        if not mat or not got:
            continue
        prog = name[len("BenchmarkCheckProgram/"):-len("/streaming")]
        print(f"streaming vs materialize [{prog}]: {mat / got:.2f}x")
        if got > (1 + STREAMING_TOLERANCE) * mat:
            failures.append(
                f"{name}: streaming {got:.0f} ns/op slower than "
                f"materialize {mat:.0f} ns/op (>{STREAMING_TOLERANCE:.0%})"
            )

    return failures


def main():
    if len(sys.argv) < 4 or sys.argv[1] not in ("parse", "check"):
        print(__doc__, file=sys.stderr)
        return 2
    if sys.argv[1] == "parse":
        report = parse(sys.argv[3:])
        if not report:
            print("no benchmark results parsed", file=sys.stderr)
            return 1
        with open(sys.argv[2], "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"{len(report)} benchmarks -> {sys.argv[2]}")
        return 0
    new = json.load(open(sys.argv[2]))
    base = json.load(open(sys.argv[3]))
    ok = check(new, base)
    print("benchmark gate:", "OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
