package rtrace

import (
	"bufio"
	"encoding/json"
	"io"
)

// chromeEvent mirrors the probe layer's trace-event record so service
// traces and simulator traces open in the same Perfetto/chrome://tracing
// tooling with identical field layout.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const chromePidServe = 1

// WriteChrome renders traces in the Chrome trace-event JSON format
// (the internal/probe trace-sink format), one thread track per trace.
// Timestamps are microseconds relative to the earliest trace start, so
// concurrent requests line up on one timeline. Output is deterministic
// for fixed inputs: events follow trace and span order, and args maps
// marshal with sorted keys.
func WriteChrome(w io.Writer, traces ...*TraceData) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["); err != nil {
		return err
	}
	var base int64
	for i, td := range traces {
		if i == 0 || td.StartUnixUs < base {
			base = td.StartUnixUs
		}
	}
	n := 0
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if n > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		n++
		_, err = bw.Write(b)
		return err
	}
	if err := emit(chromeEvent{Name: "process_name", Ph: "M", Pid: chromePidServe,
		Args: map[string]any{"name": "ratsserve"}}); err != nil {
		return err
	}
	for i, td := range traces {
		tid := i + 1
		off := td.StartUnixUs - base
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: chromePidServe, Tid: tid,
			Args: map[string]any{"name": "trace " + td.TraceID}}); err != nil {
			return err
		}
		rootArgs := map[string]any{"trace_id": td.TraceID, "status": td.Status}
		if td.Kind != "" {
			rootArgs["kind"] = td.Kind
		}
		for _, a := range td.Attrs {
			rootArgs[a.K] = a.V
		}
		if err := emit(chromeEvent{Name: td.Name, Cat: "request", Ph: "X",
			Ts: off, Dur: td.DurationUs, Pid: chromePidServe, Tid: tid, Args: rootArgs}); err != nil {
			return err
		}
		for _, ph := range td.Phases {
			if err := emitSpan(emit, &ph, off, tid, "phase"); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func emitSpan(emit func(chromeEvent) error, sp *SpanData, off int64, tid int, cat string) error {
	var args map[string]any
	if len(sp.Attrs) > 0 {
		args = make(map[string]any, len(sp.Attrs))
		for _, a := range sp.Attrs {
			args[a.K] = a.V
		}
	}
	ev := chromeEvent{Name: sp.Name, Cat: cat, Ph: "X",
		Ts: off + sp.StartUs, Dur: sp.EndUs - sp.StartUs,
		Pid: chromePidServe, Tid: tid, Args: args}
	if ev.Dur == 0 {
		// Chrome drops zero-duration complete events from some views;
		// keep them visible as 1us slivers.
		ev.Dur = 1
	}
	if err := emit(ev); err != nil {
		return err
	}
	for _, e := range sp.Events {
		var eargs map[string]any
		if len(e.Attrs) > 0 {
			eargs = make(map[string]any, len(e.Attrs))
			for _, a := range e.Attrs {
				eargs[a.K] = a.V
			}
		}
		if err := emit(chromeEvent{Name: e.Name, Cat: cat, Ph: "i",
			Ts: off + e.AtUs, Pid: chromePidServe, Tid: tid, S: "t", Args: eargs}); err != nil {
			return err
		}
	}
	for i := range sp.Children {
		if err := emitSpan(emit, &sp.Children[i], off, tid, "span"); err != nil {
			return err
		}
	}
	return nil
}

// wideEvent is the canonical per-request access-log line: everything a
// postmortem usually needs — identity, outcome, and where the time went
// — in one structured JSON object.
type wideEvent struct {
	TS         string             `json:"ts"`
	TraceID    string             `json:"trace_id"`
	Name       string             `json:"name"`
	Status     int                `json:"status"`
	Kind       string             `json:"kind,omitempty"`
	DurationMs float64            `json:"duration_ms"`
	Attrs      map[string]string  `json:"attrs,omitempty"`
	PhasesMs   map[string]float64 `json:"phases_ms,omitempty"`
}

// WideEvent renders one finished trace as a single JSON log line
// (newline-terminated). Attr and phase maps marshal with sorted keys,
// so output is deterministic for a fixed trace; repeated attr keys keep
// the last value, repeated phase names sum.
func WideEvent(td *TraceData) ([]byte, error) {
	we := wideEvent{
		TS:         td.Start,
		TraceID:    td.TraceID,
		Name:       td.Name,
		Status:     td.Status,
		Kind:       td.Kind,
		DurationMs: float64(td.DurationUs) / 1e3,
	}
	if len(td.Attrs) > 0 {
		we.Attrs = make(map[string]string, len(td.Attrs))
		for _, a := range td.Attrs {
			we.Attrs[a.K] = a.V
		}
	}
	if len(td.Phases) > 0 {
		we.PhasesMs = make(map[string]float64, len(td.Phases))
		for _, ph := range td.Phases {
			we.PhasesMs[ph.Name] += float64(ph.EndUs-ph.StartUs) / 1e3
		}
	}
	b, err := json.Marshal(we)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
