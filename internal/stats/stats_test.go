package stats

import (
	"reflect"
	"strings"
	"testing"
)

func TestAddAccumulatesEveryField(t *testing.T) {
	// Fill a with 1s via reflection, add to b twice, and check every
	// int64 field doubled — this keeps Add() honest as fields grow.
	var a, b Stats
	av := reflect.ValueOf(&a).Elem()
	for i := 0; i < av.NumField(); i++ {
		if av.Field(i).Kind() == reflect.Int64 {
			av.Field(i).SetInt(int64(i + 1))
		}
	}
	b.Add(&a)
	b.Add(&a)
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < bv.NumField(); i++ {
		if bv.Field(i).Kind() != reflect.Int64 {
			continue
		}
		if got, want := bv.Field(i).Int(), 2*int64(i+1); got != want {
			t.Errorf("field %s = %d after two Adds, want %d (Add() missing a field?)",
				bv.Type().Field(i).Name, got, want)
		}
	}
}

func TestRowsCoverEveryField(t *testing.T) {
	var s Stats
	n := 0
	sv := reflect.ValueOf(s)
	for i := 0; i < sv.NumField(); i++ {
		if sv.Field(i).Kind() == reflect.Int64 {
			n++
		}
	}
	if got := len(s.Rows()); got != n {
		t.Errorf("Rows() has %d entries, struct has %d int64 fields", got, n)
	}
}

func TestStringContainsCounters(t *testing.T) {
	s := Stats{Cycles: 42, Atomics: 7}
	out := s.String()
	if !strings.Contains(out, "cycles") || !strings.Contains(out, "42") {
		t.Error("String() missing cycles")
	}
	if !strings.Contains(out, "atomics") || !strings.Contains(out, "7") {
		t.Error("String() missing atomics")
	}
}
