// Package trace defines the intermediate representation between workloads
// and the timing simulator: per-warp (and per-CPU-thread) streams of
// warp-level operations. A workload generator (internal/workloads) emits a
// Trace; the simulator (internal/sim/system) executes it under a chosen
// coherence protocol and consistency model.
//
// The representation is trace-driven: control flow is resolved at
// generation time (the paper's benchmarks are likewise run to completion
// per configuration; the access pattern, not the values, determines the
// timing differences between configurations). Atomic values are still
// computed functionally by the simulator so workloads can verify results.
package trace

import (
	"fmt"

	"rats/internal/core"
)

// Kind is the kind of a warp-level operation.
type Kind uint8

const (
	// Compute occupies the warp for Cycles cycles (ALU work).
	Compute Kind = iota
	// Load is a (possibly divergent) global memory read.
	Load
	// Store is a global memory write.
	Store
	// Atomic is a global read-modify-write (or atomic load/store,
	// depending on AOp).
	Atomic
	// ScratchLoad reads the CU-local scratchpad.
	ScratchLoad
	// ScratchStore writes the CU-local scratchpad.
	ScratchStore
	// Barrier is a device-wide synchronization point: every warp (and
	// CPU thread) must arrive before any proceeds. Barriers carry paired
	// (SC) semantics under every model.
	Barrier
	// Join stalls the warp until all its outstanding memory operations
	// complete — a register dependency on earlier loads/atomics.
	Join
)

func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Load:
		return "load"
	case Store:
		return "store"
	case Atomic:
		return "atomic"
	case ScratchLoad:
		return "scratch-load"
	case ScratchStore:
		return "scratch-store"
	case Barrier:
		return "barrier"
	case Join:
		return "join"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsMem reports whether the op touches the global memory system.
func (k Kind) IsMem() bool { return k == Load || k == Store || k == Atomic }

// Scope is the HRF-style synchronization scope of an atomic (the
// comparison point the paper discusses in Section 7: HSA/OpenCL/HRF
// mitigate atomic costs with scoped synchronization; DeNovo makes scopes
// unnecessary). Global is the default.
type Scope uint8

const (
	// ScopeGlobal synchronizes across the whole device.
	ScopeGlobal Scope = iota
	// ScopeLocal synchronizes only within the issuing CU (an HRF
	// work-group scope): no L1 invalidation or store-buffer flush is
	// needed, and the atomic may execute at the L1 without ownership —
	// the programmer guarantees no other CU touches the location between
	// global synchronizations.
	ScopeLocal
)

// Op is one warp-level operation.
type Op struct {
	Kind Kind
	// Scope is the synchronization scope (atomics only; default global).
	Scope Scope
	// Cycles is the duration of a Compute op.
	Cycles int
	// Class distinguishes the access to the memory model (loads/stores
	// default to Data; atomics carry one of the atomic classes).
	Class core.Class
	// AOp is the atomic flavour (Atomic ops only).
	AOp core.AtomicOp
	// Operand is the atomic operand (uniform across lanes).
	Operand int64
	// Operands, if non-nil, gives a per-lane operand (len == len(Addrs)),
	// overriding Operand — e.g. a histogram merge adding a different
	// local count to each bin.
	Operands []int64
	// Addrs holds the per-lane byte addresses (IsMem ops). The coalescer
	// groups them into line transactions; atomics issue per lane.
	Addrs []uint64
}

// Warp is one warp's (or CPU thread's) operation stream, statically
// placed on a compute unit.
type Warp struct {
	// CU is the compute-unit index the warp runs on; CPU threads use the
	// CPU node and are marked by IsCPU.
	CU    int
	IsCPU bool
	Ops   []Op
}

// Trace is a complete workload: warps plus initial memory values and
// metadata used by the harness.
type Trace struct {
	Name  string
	Warps []*Warp
	// Init seeds the functional value layer (word addresses).
	Init map[uint64]int64
	// FinalCheck, if non-nil, validates the functional result after
	// simulation (given read access to final memory values).
	FinalCheck func(read func(addr uint64) int64) error
}

// New creates an empty trace.
func New(name string) *Trace {
	return &Trace{Name: name, Init: map[uint64]int64{}}
}

// AddWarp appends a GPU warp on the given CU and returns it.
func (t *Trace) AddWarp(cu int) *Warp {
	w := &Warp{CU: cu}
	t.Warps = append(t.Warps, w)
	return w
}

// AddCPUThread appends a CPU thread and returns it.
func (t *Trace) AddCPUThread() *Warp {
	w := &Warp{IsCPU: true}
	t.Warps = append(t.Warps, w)
	return w
}

// NumOps returns the total op count for reporting.
func (t *Trace) NumOps() int {
	n := 0
	for _, w := range t.Warps {
		n += len(w.Ops)
	}
	return n
}

// Compute appends a compute delay.
func (w *Warp) Compute(cycles int) *Warp {
	w.Ops = append(w.Ops, Op{Kind: Compute, Cycles: cycles})
	return w
}

// Load appends a global load of the given lane addresses.
func (w *Warp) Load(class core.Class, addrs ...uint64) *Warp {
	w.Ops = append(w.Ops, Op{Kind: Load, Class: class, AOp: core.OpLoad, Addrs: addrs})
	return w
}

// Store appends a global store of the given lane addresses.
func (w *Warp) Store(class core.Class, addrs ...uint64) *Warp {
	w.Ops = append(w.Ops, Op{Kind: Store, Class: class, AOp: core.OpStore, Addrs: addrs})
	return w
}

// Atomic appends an atomic op over the given lane addresses.
func (w *Warp) Atomic(class core.Class, aop core.AtomicOp, operand int64, addrs ...uint64) *Warp {
	w.Ops = append(w.Ops, Op{Kind: Atomic, Class: class, AOp: aop, Operand: operand, Addrs: addrs})
	return w
}

// AtomicScoped appends an atomic with an explicit HRF scope.
func (w *Warp) AtomicScoped(scope Scope, class core.Class, aop core.AtomicOp, operand int64, addrs ...uint64) *Warp {
	w.Ops = append(w.Ops, Op{Kind: Atomic, Scope: scope, Class: class, AOp: aop, Operand: operand, Addrs: addrs})
	return w
}

// AtomicLanes appends an atomic op with per-lane operands.
func (w *Warp) AtomicLanes(class core.Class, aop core.AtomicOp, addrs []uint64, operands []int64) *Warp {
	if len(addrs) != len(operands) {
		panic("trace: AtomicLanes length mismatch")
	}
	w.Ops = append(w.Ops, Op{Kind: Atomic, Class: class, AOp: aop, Addrs: addrs, Operands: operands})
	return w
}

// AtomicLoad appends an atomic load (one lane).
func (w *Warp) AtomicLoad(class core.Class, addr uint64) *Warp {
	return w.Atomic(class, core.OpLoad, 0, addr)
}

// AtomicStore appends an atomic store (one lane).
func (w *Warp) AtomicStore(class core.Class, addr uint64, val int64) *Warp {
	return w.Atomic(class, core.OpStore, val, addr)
}

// ScratchAccess appends n scratchpad accesses (modelled as fixed-latency
// local operations).
func (w *Warp) ScratchAccess(kind Kind, n int) *Warp {
	for i := 0; i < n; i++ {
		w.Ops = append(w.Ops, Op{Kind: kind, Cycles: 1})
	}
	return w
}

// Barrier appends a device-wide barrier.
func (w *Warp) Barrier() *Warp {
	w.Ops = append(w.Ops, Op{Kind: Barrier})
	return w
}

// Join appends a dependency stall on all outstanding memory operations.
func (w *Warp) Join() *Warp {
	w.Ops = append(w.Ops, Op{Kind: Join})
	return w
}
