package system

import (
	"fmt"
	"testing"

	"rats/internal/core"
	"rats/internal/sim/memsys"
	"rats/internal/trace"
)

// allConfigs returns the paper's six configurations (GD0..DDR).
func allConfigs() map[string]memsys.Config {
	out := map[string]memsys.Config{}
	for _, p := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
		for _, m := range core.Models() {
			name := "G"
			if p == memsys.ProtoDeNovo {
				name = "D"
			}
			switch m {
			case core.DRF0:
				name += "D0"
			case core.DRF1:
				name += "D1"
			default:
				name += "DR"
			}
			out[name] = memsys.Default(p, m)
		}
	}
	return out
}

func TestSingleLoad(t *testing.T) {
	for name, cfg := range allConfigs() {
		tr := trace.New("single-load")
		tr.AddWarp(0).Load(core.Data, 0x1000)
		res, err := RunTrace(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// A cold load misses L1 and L2: DRAM latency dominates.
		if res.Stats.Cycles < cfg.DRAMLat {
			t.Errorf("%s: %d cycles — cold miss should pay DRAM latency %d", name, res.Stats.Cycles, cfg.DRAMLat)
		}
		if res.Stats.Cycles > cfg.DRAMLat+200 {
			t.Errorf("%s: %d cycles — too slow for one load", name, res.Stats.Cycles)
		}
		if res.Stats.L1Misses != 1 || res.Stats.DRAMAccesses != 1 {
			t.Errorf("%s: misses=%d dram=%d, want 1/1", name, res.Stats.L1Misses, res.Stats.DRAMAccesses)
		}
	}
}

func TestLoadHitAfterMiss(t *testing.T) {
	for name, cfg := range allConfigs() {
		tr := trace.New("load-reuse")
		w := tr.AddWarp(0)
		w.Load(core.Data, 0x1000)
		w.Join() // register dependency: wait for the fill
		w.Load(core.Data, 0x1000)
		res, err := RunTrace(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.L1Hits < 1 {
			t.Errorf("%s: second load should hit (hits=%d misses=%d)", name, res.Stats.L1Hits, res.Stats.L1Misses)
		}
	}
}

func TestAtomicFunctionalAllConfigs(t *testing.T) {
	// 8 warps on different CUs, each incrementing the same counter 16
	// times: the final value must be exactly 128 under every protocol and
	// model — atomicity is protocol-independent.
	const warps, incs = 8, 16
	addr := uint64(0x4000)
	for name, cfg := range allConfigs() {
		tr := trace.New("inc-storm")
		for w := 0; w < warps; w++ {
			warp := tr.AddWarp(w % cfg.NumCUs)
			for i := 0; i < incs; i++ {
				warp.Atomic(core.Commutative, core.OpInc, 0, addr)
			}
		}
		tr.FinalCheck = func(read func(uint64) int64) error {
			if got := read(addr); got != warps*incs {
				return fmt.Errorf("counter = %d, want %d", got, warps*incs)
			}
			return nil
		}
		res, err := RunTrace(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Stats.Atomics != warps*incs {
			t.Errorf("%s: %d atomics performed, want %d", name, res.Stats.Atomics, warps*incs)
		}
	}
}

func TestAtomicPlacementByProtocol(t *testing.T) {
	tr := func() *trace.Trace {
		tr := trace.New("placement")
		tr.AddWarp(0).Atomic(core.Commutative, core.OpInc, 0, 0x4000).
			Atomic(core.Commutative, core.OpInc, 0, 0x4000)
		return tr
	}
	res, err := RunTrace(memsys.Default(memsys.ProtoGPU, core.DRFrlx), tr())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AtomicsAtL2 != 2 || res.Stats.AtomicsAtL1 != 0 {
		t.Errorf("GPU: atomics L2=%d L1=%d, want 2/0", res.Stats.AtomicsAtL2, res.Stats.AtomicsAtL1)
	}
	res, err = RunTrace(memsys.Default(memsys.ProtoDeNovo, core.DRFrlx), tr())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AtomicsAtL1 != 2 || res.Stats.AtomicsAtL2 != 0 {
		t.Errorf("DeNovo: atomics L1=%d L2=%d, want 2/0", res.Stats.AtomicsAtL1, res.Stats.AtomicsAtL2)
	}
	if res.Stats.OwnershipRequests < 1 {
		t.Error("DeNovo: expected an ownership request")
	}
}

func TestConsistencyActionsByModel(t *testing.T) {
	// A paired atomic load invalidates; unpaired/relaxed do not.
	mk := func(class core.Class) *trace.Trace {
		tr := trace.New("inval")
		w := tr.AddWarp(0)
		w.Load(core.Data, 0x100) // warm a line
		w.AtomicLoad(class, 0x4000)
		return tr
	}
	for _, tc := range []struct {
		model     core.Model
		class     core.Class
		wantInval bool
	}{
		{core.DRF0, core.Unpaired, true}, // DRF0 strengthens to paired
		{core.DRF1, core.Unpaired, false},
		{core.DRF1, core.Paired, true},
		{core.DRFrlx, core.Commutative, false},
		{core.DRFrlx, core.Paired, true},
	} {
		cfg := memsys.Default(memsys.ProtoGPU, tc.model)
		res, err := RunTrace(cfg, mk(tc.class))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Stats.AcquireInvalidations > 0
		if got != tc.wantInval {
			t.Errorf("%v/%v: invalidations=%d, wantInval=%v", tc.model, tc.class, res.Stats.AcquireInvalidations, tc.wantInval)
		}
	}
}

func TestReleaseFlushByModel(t *testing.T) {
	mk := func(class core.Class) *trace.Trace {
		tr := trace.New("flush")
		w := tr.AddWarp(0)
		w.Store(core.Data, 0x100)
		w.AtomicStore(class, 0x4000, 1)
		return tr
	}
	for _, tc := range []struct {
		model     core.Model
		class     core.Class
		wantFlush bool
	}{
		{core.DRF0, core.Commutative, true},
		{core.DRF1, core.Commutative, false},
		{core.DRFrlx, core.Commutative, false},
		{core.DRFrlx, core.Paired, true},
	} {
		cfg := memsys.Default(memsys.ProtoGPU, tc.model)
		res, err := RunTrace(cfg, mk(tc.class))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Stats.ReleaseFlushes > 0
		if got != tc.wantFlush {
			t.Errorf("%v/%v: flushes=%d, wantFlush=%v", tc.model, tc.class, res.Stats.ReleaseFlushes, tc.wantFlush)
		}
	}
}

func TestBarrier(t *testing.T) {
	// Two warps on different CUs increment, barrier, then one reads.
	for name, cfg := range allConfigs() {
		tr := trace.New("barrier")
		a := tr.AddWarp(0)
		a.Atomic(core.Commutative, core.OpInc, 0, 0x4000)
		a.Barrier()
		a.AtomicLoad(core.Paired, 0x4000)
		b := tr.AddWarp(1)
		b.Atomic(core.Commutative, core.OpInc, 0, 0x4000)
		b.Barrier()
		tr.FinalCheck = func(read func(uint64) int64) error {
			if got := read(0x4000); got != 2 {
				return fmt.Errorf("counter = %d, want 2", got)
			}
			return nil
		}
		if _, err := RunTrace(cfg, tr); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestModelOrdering: weakening the model never slows a run down on an
// atomic-heavy workload — DRFrlx <= DRF1 <= DRF0 in cycles, for both
// protocols.
func TestModelOrdering(t *testing.T) {
	mk := func() *trace.Trace {
		tr := trace.New("atomic-heavy")
		for w := 0; w < 8; w++ {
			warp := tr.AddWarp(w)
			for i := 0; i < 32; i++ {
				warp.Atomic(core.Commutative, core.OpInc, 0, uint64(0x4000+16*(i%8)))
			}
		}
		return tr
	}
	for _, proto := range []memsys.Protocol{memsys.ProtoGPU, memsys.ProtoDeNovo} {
		var cycles [3]int64
		for i, m := range core.Models() {
			res, err := RunTrace(memsys.Default(proto, m), mk())
			if err != nil {
				t.Fatal(err)
			}
			cycles[i] = res.Stats.Cycles
		}
		if !(cycles[2] <= cycles[1] && cycles[1] <= cycles[0]) {
			t.Errorf("%v: cycles DRF0=%d DRF1=%d DRFrlx=%d not monotone",
				proto, cycles[0], cycles[1], cycles[2])
		}
		if cycles[2] >= cycles[0] {
			t.Errorf("%v: DRFrlx (%d) should beat DRF0 (%d) on atomic-heavy code",
				proto, cycles[2], cycles[0])
		}
	}
}

func TestCPUThread(t *testing.T) {
	cfg := memsys.Default(memsys.ProtoDeNovo, core.DRFrlx)
	tr := trace.New("cpu")
	tr.AddCPUThread().AtomicStore(core.Paired, 0x4000, 7)
	tr.AddWarp(0).AtomicLoad(core.Paired, 0x4000)
	res, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Read(0x4000) != 7 {
		t.Errorf("CPU store lost: %d", res.Read(0x4000))
	}
}

func TestEnergyNonZero(t *testing.T) {
	cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
	tr := trace.New("e")
	tr.AddWarp(0).Load(core.Data, 0x1000).Compute(10)
	res, err := RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.Total() <= 0 || res.Energy.L1 <= 0 || res.Energy.NoC <= 0 {
		t.Errorf("energy breakdown degenerate: %+v", res.Energy)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *trace.Trace {
		tr := trace.New("det")
		for w := 0; w < 6; w++ {
			warp := tr.AddWarp(w % 3)
			for i := 0; i < 20; i++ {
				warp.Atomic(core.Commutative, core.OpAdd, int64(w), uint64(0x4000+8*(i%4)))
				warp.Load(core.Data, uint64(0x10000+64*i))
			}
		}
		return tr
	}
	cfg := memsys.Default(memsys.ProtoDeNovo, core.DRFrlx)
	r1, err := RunTrace(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunTrace(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats {
		t.Errorf("non-deterministic stats:\n%v\nvs\n%v", r1.Stats.String(), r2.Stats.String())
	}
}
