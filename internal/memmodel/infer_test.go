package memmodel

import (
	"strings"
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

// TestInferMP: message passing needs its flag paired (so1 is the only
// ordering mechanism for the guarded data read); the cheapest legal
// labelling must therefore put the flag accesses at paired.
func TestInferMP(t *testing.T) {
	p := litmus.MP("mp", core.Paired)
	labels, err := InferLabels(p, InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) == 0 {
		t.Fatal("no legal labelling found")
	}
	// Sites: producer's flag store, consumer's flag load.
	for _, l := range labels {
		if l.Cost != 4 { // both paired
			t.Errorf("labelling %v: expected cost 4 (paired/paired)", l)
		}
		for _, c := range l.Classes {
			if c != core.Paired {
				t.Errorf("labelling %v: MP flag must be paired", l)
			}
		}
	}
}

// TestInferEventCounter: racing increments whose values are discarded can
// be fully relaxed — the minimum cost is 0.
func TestInferEventCounter(t *testing.T) {
	p := litmus.New("counter")
	p.Thread("w0").Inc("CTR", core.Paired)
	p.Thread("w1").Inc("CTR", core.Paired)
	labels, err := InferLabels(p, InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) == 0 {
		t.Fatal("no labelling")
	}
	if labels[0].Cost != 0 {
		t.Errorf("racing discarded increments should relax to cost 0, got %v", labels[0])
	}
	// Commutative must be among the minimal labellings for both sites.
	foundComm := false
	for _, l := range labels {
		if l.Classes[0] == core.Commutative && l.Classes[1] == core.Commutative {
			foundComm = true
		}
	}
	if !foundComm {
		t.Errorf("commutative/commutative missing from %v", labels)
	}
}

// TestInferObservedIncrement: an increment whose old value is used cannot
// be commutative; quantum still works (value-resilient), so cost stays 0
// but the class set shrinks.
func TestInferObservedIncrement(t *testing.T) {
	p := litmus.New("obs")
	t0 := p.Thread("w0")
	r := t0.RMW(core.OpInc, "CTR", 0, core.Paired)
	t0.Use(r)
	p.Thread("w1").Inc("CTR", core.Paired)
	labels, err := InferLabels(p, InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l.Classes[0] == core.Commutative {
			t.Errorf("observed increment labelled commutative: %v", l)
		}
		if l.Classes[0] == core.Speculative {
			t.Errorf("observed racy RMW labelled speculative: %v", l)
		}
	}
	// With quantum opted in, the value-resilient labelling reaches cost 0.
	withQ, err := InferLabels(p, InferOptions{Candidates: []core.Class{
		core.Paired, core.Unpaired, core.Commutative, core.NonOrdering,
		core.Quantum, core.Speculative,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(withQ) == 0 || withQ[0].Cost != 0 {
		t.Errorf("quantum labelling should reach cost 0: %v", withQ)
	}
	foundQ := false
	for _, l := range withQ {
		if l.Cost == 0 && l.Classes[0] == core.Quantum {
			foundQ = true
		}
	}
	if !foundQ {
		t.Error("quantum labelling missing for the observed increment")
	}
}

// TestInferSiteCap: the exponential search refuses oversized programs.
func TestInferSiteCap(t *testing.T) {
	p := litmus.New("big")
	th := p.Thread("t")
	for i := 0; i < 8; i++ {
		th.Inc("C", core.Paired)
	}
	if _, err := InferLabels(p, InferOptions{}); err == nil {
		t.Fatal("expected site-cap error")
	}
	if _, err := InferLabels(p, InferOptions{MaxSites: 8, Candidates: []core.Class{core.Commutative}}); err != nil {
		t.Fatalf("restricted candidate search should fit: %v", err)
	}
}

// TestInferenceMatchesSuite: for each legal suite program, re-inferring
// with its own classes as candidates must find a labelling no more
// expensive than the author's.
func TestInferenceMatchesSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The search is exponential in atomic sites; restrict candidates to
	// keep the test fast while still comparing against the author's cost.
	candidates := []core.Class{core.Paired, core.Unpaired, core.Quantum}
	for _, tc := range []struct {
		prog *litmus.Program
	}{
		{litmus.WorkQueue()},
		{litmus.SplitCounter()},
	} {
		var authorCost int
		var sites int
		for _, th := range tc.prog.Threads {
			for _, op := range th.Ops {
				if !op.IsBranch && op.Class.IsAtomic() {
					authorCost += classCost(op.Class)
					sites++
				}
			}
		}
		labels, err := InferLabels(tc.prog, InferOptions{MaxSites: sites, Candidates: candidates})
		if err != nil {
			t.Fatalf("%s: %v", tc.prog.Name, err)
		}
		if len(labels) == 0 {
			t.Fatalf("%s: no legal labelling (author's exists!)", tc.prog.Name)
		}
		if labels[0].Cost > authorCost {
			t.Errorf("%s: inferred cost %d worse than author's %d", tc.prog.Name, labels[0].Cost, authorCost)
		}
	}
}

func TestSitesListing(t *testing.T) {
	sites := Sites(litmus.WorkQueue())
	if len(sites) != 3 { // OCC inc, unpaired poll, paired re-check
		t.Fatalf("sites = %v", sites)
	}
	joined := strings.Join(sites, "\n")
	if !strings.Contains(joined, "client") || !strings.Contains(joined, "service") {
		t.Errorf("sites missing thread names: %v", sites)
	}
}
