package memmodel

import (
	"testing"

	"rats/internal/core"
	"rats/internal/litmus"
)

// TestSuiteVerdicts checks every litmus-suite program against its expected
// legality under DRF0, DRF1, and DRFrlx — the core validation of the
// programmer-centric model.
func TestSuiteVerdicts(t *testing.T) {
	for _, tc := range litmus.Suite() {
		tc := tc
		t.Run(tc.Prog.Name, func(t *testing.T) {
			for i, m := range core.Models() {
				v, err := CheckProgram(tc.Prog, m)
				if err != nil {
					t.Fatalf("%s under %s: %v", tc.Prog.Name, m, err)
				}
				if v.Legal != tc.Legal[i] {
					t.Errorf("%s under %s: legal=%v, want %v (%s)",
						tc.Prog.Name, m, v.Legal, tc.Legal[i], v.Summary())
				}
			}
		})
	}
}

// raceKindsOf returns the set of race kinds a program exhibits under
// DRFrlx.
func raceKindsOf(t *testing.T, p *litmus.Program) map[RaceKind]bool {
	t.Helper()
	v, err := CheckProgram(p, core.DRFrlx)
	if err != nil {
		t.Fatal(err)
	}
	out := map[RaceKind]bool{}
	for k, rs := range v.Races {
		if len(rs) > 0 {
			out[k] = true
		}
	}
	return out
}

// TestRaceKindPrecision checks that each mislabeled variant is caught by
// exactly the detector the paper's model assigns to it.
func TestRaceKindPrecision(t *testing.T) {
	for _, tc := range []struct {
		prog *litmus.Program
		want RaceKind
	}{
		{litmus.MPData(), DataRace},
		{litmus.MP("mp_unpaired", core.Unpaired), DataRace},
		{litmus.EventCounterObserved(), CommutativeRace},
		{litmus.EventCounterNonCommutative(), CommutativeRace},
		{litmus.Figure2a(), NonOrderingRace},
		{litmus.NOFlagPublish(), NonOrderingRace},
		{litmus.QuantumMixed(), QuantumRace},
		{litmus.SeqlocksUnchecked(), SpeculativeRace},
		{litmus.SeqlocksWW(), SpeculativeRace},
	} {
		kinds := raceKindsOf(t, tc.prog)
		if !kinds[tc.want] {
			t.Errorf("%s: expected a %v, got %v", tc.prog.Name, tc.want, kinds)
		}
	}
}

// TestFigure2 reproduces the paper's Figure 2 at per-execution
// granularity: 2(a)'s execution has a non-ordering race; 2(b)'s shown
// execution (Z observed as 1) does not, because the paired path through Z
// is a valid ordering path.
func TestFigure2(t *testing.T) {
	// 2(a): some execution must exhibit the race.
	execsA, err := Enumerate(litmus.Figure2a(), EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ex := range execsA {
		a := Analyze(ex)
		if len(a.Races[NonOrderingRace]) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("Figure 2(a): no execution exhibits the non-ordering race")
	}

	// 2(b): executions where the reader observes Z=1 (the valid paired
	// path of the figure) must be race-free.
	execsB, err := Enumerate(litmus.Figure2b(), EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, ex := range execsB {
		var zLoaded int64 = -1
		for _, ev := range ex.Events {
			if ev.Thread == 1 && ev.Op.Loc == "Z" {
				zLoaded = ev.Loaded
			}
		}
		if zLoaded != 1 {
			continue
		}
		checked++
		a := Analyze(ex)
		if n := len(a.Races[NonOrderingRace]); n > 0 {
			t.Errorf("Figure 2(b): execution with Z=1 observed has %d non-ordering race(s)", n)
		}
	}
	if checked == 0 {
		t.Fatal("Figure 2(b): no execution observed Z=1")
	}
}

// TestUpgradeMonotonic: strengthening every relaxed atomic to paired never
// makes a DRFrlx-legal program illegal (quantum is the exception class in
// general, but after full strengthening no quantum accesses remain, so
// only data races matter — and those only shrink as hb1 grows).
func TestUpgradeMonotonic(t *testing.T) {
	for _, tc := range litmus.Suite() {
		v, err := CheckProgram(tc.Prog, core.DRFrlx)
		if err != nil {
			t.Fatal(err)
		}
		if !v.Legal {
			continue
		}
		strengthened := tc.Prog.Relabel(func(c core.Class) core.Class {
			if c.IsAtomic() {
				return core.Paired
			}
			return c
		})
		strengthened.Name = tc.Prog.Name + "_allpaired"
		v2, err := CheckProgram(strengthened, core.DRFrlx)
		if err != nil {
			t.Fatal(err)
		}
		if !v2.Legal {
			t.Errorf("%s: legal under DRFrlx but illegal when all atomics strengthened to paired: %s",
				tc.Prog.Name, v2.Summary())
		}
	}
}

// TestLegalDRFrlxImpliesLegalDRF0: DRF0 collapses atomics to paired, which
// only adds so1 edges; data races can only disappear.
func TestLegalDRFrlxImpliesLegalDRF0(t *testing.T) {
	for _, tc := range litmus.Suite() {
		vR, err := CheckProgram(tc.Prog, core.DRFrlx)
		if err != nil {
			t.Fatal(err)
		}
		v0, err := CheckProgram(tc.Prog, core.DRF0)
		if err != nil {
			t.Fatal(err)
		}
		if vR.Legal && !v0.Legal {
			t.Errorf("%s: legal under DRFrlx but illegal under DRF0", tc.Prog.Name)
		}
	}
}

// TestSeqlockObservabilityIsDynamic: the misspeculated seqlock read is
// unobserved precisely because the guarded use is skipped; a static
// analysis would flag it.
func TestSeqlockObservabilityIsDynamic(t *testing.T) {
	execs, err := Enumerate(litmus.Seqlocks(), EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sawOverlap := false
	for _, ex := range execs {
		a := Analyze(ex)
		if len(a.Races[SpeculativeRace]) > 0 {
			t.Fatalf("legal seqlock flagged with speculative race")
		}
		// Find an execution where a speculative load raced (hb1-unordered
		// with a spec store) — the misspeculation case.
		for _, pr := range a.Rel.Race.Pairs() {
			ei := ex.Events[pr[0]]
			if ei.Op.Class == core.Speculative {
				sawOverlap = true
			}
		}
	}
	if !sawOverlap {
		t.Error("no execution exercised the speculative overlap")
	}
}

// TestWorkQueueUnpairedRaceIsBenign: the occupancy poll races but only
// with atomics, so no detector fires.
func TestWorkQueueUnpairedRaceIsBenign(t *testing.T) {
	execs, err := Enumerate(litmus.WorkQueue(), EnumOptions{})
	if err != nil {
		t.Fatal(err)
	}
	raced := false
	for _, ex := range execs {
		a := Analyze(ex)
		for _, k := range RaceKinds() {
			if len(a.Races[k]) > 0 {
				t.Fatalf("work queue flagged: %v", k)
			}
		}
		if a.Rel.Race.Count() > 0 {
			raced = true
		}
	}
	if !raced {
		t.Error("occupancy poll never raced — test too weak")
	}
}

// TestVerdictSummary smoke-tests report strings.
func TestVerdictSummary(t *testing.T) {
	v, err := CheckProgram(litmus.MPData(), core.DRF0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Legal {
		t.Fatal("MPData must be illegal")
	}
	if s := v.Summary(); s == "" {
		t.Error("empty summary")
	}
	v2, err := CheckProgram(litmus.WorkQueue(), core.DRFrlx)
	if err != nil {
		t.Fatal(err)
	}
	if s := v2.Summary(); s == "" || !v2.Legal {
		t.Error("work queue summary/legality wrong")
	}
}
