package workloads

import (
	"fmt"
	"sort"
	"strings"

	"rats/internal/core"
	"rats/internal/trace"
)

// Profile summarizes a trace's dynamic operation mix — the analysis the
// paper used to select Figure 1's applications ("the 9 applications with
// the highest percentage of atomics, as determined from dynamic
// instruction profiling").
type Profile struct {
	Name     string
	Warps    int
	Ops      int // warp-level operations
	MemOps   int
	Loads    int
	Stores   int
	Atomics  int // atomic transactions (per lane)
	Barriers int
	Scratch  int
	// ByClass counts atomic transactions per programmer class.
	ByClass map[core.Class]int
}

// AtomicFraction returns atomic transactions over all memory
// transactions (lanes counted individually for atomics, lines for
// loads/stores — the unit the memory system sees).
func (p *Profile) AtomicFraction() float64 {
	total := p.Loads + p.Stores + p.Atomics
	if total == 0 {
		return 0
	}
	return float64(p.Atomics) / float64(total)
}

// ProfileTrace computes the operation mix of a trace.
func ProfileTrace(tr *trace.Trace) *Profile {
	p := &Profile{Name: tr.Name, Warps: len(tr.Warps), ByClass: map[core.Class]int{}}
	lineOf := func(a uint64) uint64 { return a / 64 }
	for _, w := range tr.Warps {
		for _, op := range w.Ops {
			p.Ops++
			switch op.Kind {
			case trace.Load, trace.Store:
				p.MemOps++
				lines := map[uint64]bool{}
				for _, a := range op.Addrs {
					lines[lineOf(a)] = true
				}
				if op.Kind == trace.Load {
					p.Loads += len(lines)
				} else {
					p.Stores += len(lines)
				}
			case trace.Atomic:
				p.MemOps++
				p.Atomics += len(op.Addrs)
				p.ByClass[op.Class] += len(op.Addrs)
			case trace.Barrier:
				p.Barriers++
			case trace.ScratchLoad, trace.ScratchStore:
				p.Scratch++
			}
		}
	}
	return p
}

// ProfileTable renders the operation mix of every registered workload,
// sorted by atomic fraction (descending) — reproducing the selection
// criterion behind Figure 1.
func ProfileTable(scale Scale) string {
	var profiles []*Profile
	for _, e := range All() {
		profiles = append(profiles, ProfileTrace(e.Build(scale)))
	}
	sort.Slice(profiles, func(i, j int) bool {
		return profiles[i].AtomicFraction() > profiles[j].AtomicFraction()
	})
	var b strings.Builder
	b.WriteString("Workload atomic profiles (Figure 1 selection criterion)\n")
	fmt.Fprintf(&b, "  %-8s %6s %8s %8s %8s %8s %8s  %s\n",
		"name", "warps", "ops", "loads", "stores", "atomics", "atomic%", "classes")
	for _, p := range profiles {
		var classes []string
		for _, c := range core.Classes() {
			if n := p.ByClass[c]; n > 0 {
				classes = append(classes, fmt.Sprintf("%s:%d", c, n))
			}
		}
		fmt.Fprintf(&b, "  %-8s %6d %8d %8d %8d %8d %7.1f%%  %s\n",
			p.Name, p.Warps, p.Ops, p.Loads, p.Stores, p.Atomics,
			100*p.AtomicFraction(), strings.Join(classes, " "))
	}
	return b.String()
}
