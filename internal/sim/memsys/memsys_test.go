package memsys

import (
	"container/heap"
	"testing"

	"rats/internal/core"
	"rats/internal/sim/noc"
	"rats/internal/stats"
)

// rig is a minimal harness driving L1s and L2 banks without the CU layer,
// so protocol corner cases can be exercised directly.
type rig struct {
	cfg   Config
	env   *Env
	mesh  *noc.Mesh
	l1s   []*L1
	l2s   []*L2Bank
	st    stats.Stats
	cycle int64
	evs   evq
	seq   int64
}

type rigEvent struct {
	cycle int64
	seq   int64
	d     Deferred
}
type evq []rigEvent

func (q evq) Len() int { return len(q) }
func (q evq) Less(i, j int) bool {
	if q[i].cycle != q[j].cycle {
		return q[i].cycle < q[j].cycle
	}
	return q[i].seq < q[j].seq
}
func (q evq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *evq) Push(x any)   { *q = append(*q, x.(rigEvent)) }
func (q *evq) Pop() any     { old := *q; n := len(old); v := old[n-1]; *q = old[:n-1]; return v }

func newRig(proto Protocol) *rig {
	r := &rig{cfg: Default(proto, core.DRFrlx)}
	r.mesh = noc.NewMesh(r.cfg.MeshWidth, r.cfg.MeshHeight, r.cfg.HopLat, &r.st)
	r.env = &Env{
		Cfg: &r.cfg, Mesh: r.mesh, Stats: &r.st, Values: map[uint64]int64{},
		At: func(c int64, d Deferred) {
			if c <= r.cycle {
				c = r.cycle + 1
			}
			r.seq++
			heap.Push(&r.evs, rigEvent{cycle: c, seq: r.seq, d: d})
		},
	}
	for n := 0; n < r.cfg.Nodes(); n++ {
		l1 := NewL1(r.env, n)
		l2 := NewL2Bank(r.env, n)
		r.l1s = append(r.l1s, l1)
		r.l2s = append(r.l2s, l2)
		node := n
		r.mesh.SetReceiver(n, func(m noc.Message) {
			if IsL2Request(m.Payload) {
				r.l2s[node].Handle(r.cycle, m.Payload)
				return
			}
			r.l1s[node].Handle(r.cycle, m.Payload)
		})
	}
	return r
}

// step advances one cycle.
func (r *rig) step() {
	r.cycle++
	for r.evs.Len() > 0 && r.evs[0].cycle <= r.cycle {
		e := heap.Pop(&r.evs).(rigEvent)
		e.d.Fire(r.cycle)
	}
	r.mesh.Tick(r.cycle)
	for _, l1 := range r.l1s {
		l1.Tick(r.cycle)
	}
}

// run steps until everything quiesces (or the bound trips).
func (r *rig) run(t *testing.T, bound int64) {
	t.Helper()
	for i := int64(0); i < bound; i++ {
		r.step()
		if r.evs.Len() == 0 && !r.mesh.Pending() {
			idle := true
			for _, l1 := range r.l1s {
				if !l1.Quiesced() {
					idle = false
				}
			}
			if idle {
				return
			}
		}
	}
	t.Fatalf("rig did not quiesce within %d cycles", bound)
}

// atomicTxn builds an increment transaction, counting completions.
func atomicTxn(addr uint64, done *int) *Txn {
	return &Txn{
		Kind: TxnAtomic, Addr: addr, Class: core.Commutative, AOp: core.OpInc,
		Done: DoneFunc(func(int64, int64) { *done++ }),
	}
}

// TestDeferredOwnershipYield reproduces the registry race: three L1s
// request ownership of the same line nearly simultaneously; the middle
// one receives a yield request before its own grant has arrived and must
// defer. Afterwards exactly one L1 owns the line and all atomics have
// performed.
func TestDeferredOwnershipYield(t *testing.T) {
	r := newRig(ProtoDeNovo)
	const addr = 0x4000
	line := addr / r.cfg.LineSize
	done := 0
	// Back-to-back issues from three different nodes.
	for _, node := range []int{3, 7, 9} {
		if !r.l1s[node].TryIssue(r.cycle, atomicTxn(addr, &done)) {
			t.Fatal("issue rejected")
		}
	}
	r.run(t, 2000)
	if done != 3 {
		t.Fatalf("completed %d atomics, want 3", done)
	}
	if got := r.env.Read(addr); got != 3 {
		t.Fatalf("value = %d, want 3", got)
	}
	owners := 0
	for _, l1 := range r.l1s {
		if l1.OwnsLine(line) {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("%d L1s own the line, want exactly 1", owners)
	}
	if r.st.RemoteL1Forwards < 1 {
		t.Error("expected forwarded ownership")
	}
}

// TestReadThenWriteUpgrade: a read miss outstanding when a store joins
// the same MSHR entry forces a second, ownership-granting request.
func TestReadThenWriteUpgrade(t *testing.T) {
	r := newRig(ProtoDeNovo)
	const addr = 0x9000
	line := addr / r.cfg.LineSize
	loads, atomics := 0, 0
	r.l1s[0].TryIssue(r.cycle, &Txn{
		Kind: TxnLoad, Addr: addr, Class: core.Data, AOp: core.OpLoad,
		Done: DoneFunc(func(int64, int64) { loads++ }),
	})
	// Same cycle: an atomic to the same line joins the read entry.
	if !r.l1s[0].TryIssue(r.cycle, atomicTxn(addr, &atomics)) {
		t.Fatal("atomic join rejected")
	}
	r.run(t, 3000)
	if loads != 1 || atomics != 1 {
		t.Fatalf("loads=%d atomics=%d", loads, atomics)
	}
	if !r.l1s[0].OwnsLine(line) {
		t.Error("line should end up owned after the upgrade")
	}
	if r.st.OwnershipRequests < 1 {
		t.Error("upgrade must issue an ownership request")
	}
	if r.env.Read(addr) != 1 {
		t.Errorf("value = %d", r.env.Read(addr))
	}
}

// TestFwdReadKeepsOwnership: a remote read is served by the owner without
// surrendering the registration.
func TestFwdReadKeepsOwnership(t *testing.T) {
	r := newRig(ProtoDeNovo)
	const addr = 0x5000
	line := addr / r.cfg.LineSize
	done := 0
	r.l1s[2].TryIssue(r.cycle, atomicTxn(addr, &done))
	r.run(t, 2000)
	loaded := 0
	r.l1s[6].TryIssue(r.cycle, &Txn{
		Kind: TxnLoad, Addr: addr, Class: core.Data, AOp: core.OpLoad,
		Done: DoneFunc(func(_ int64, v int64) { loaded++; _ = v }),
	})
	r.run(t, 2000)
	if loaded != 1 {
		t.Fatal("remote read incomplete")
	}
	if !r.l1s[2].OwnsLine(line) {
		t.Error("owner lost its registration on a read")
	}
	if !r.l1s[6].HoldsLine(line) {
		t.Error("reader did not cache a valid copy")
	}
	if r.st.RemoteL1Forwards != 1 {
		t.Errorf("forwards = %d, want 1", r.st.RemoteL1Forwards)
	}
}

// TestGPUAtomicRoundTrip: a GPU-coherence atomic performs at the home L2
// bank and returns the old value.
func TestGPUAtomicRoundTrip(t *testing.T) {
	r := newRig(ProtoGPU)
	const addr = 0x7000
	r.env.Values[r.cfg.WordAddr(addr)] = 41
	var got int64 = -1
	r.l1s[0].TryIssue(r.cycle, &Txn{
		Kind: TxnAtomic, Addr: addr, Class: core.Commutative, AOp: core.OpInc,
		Done: DoneFunc(func(_ int64, v int64) { got = v }),
	})
	r.run(t, 2000)
	if got != 41 {
		t.Errorf("old value = %d, want 41", got)
	}
	if r.env.Read(addr) != 42 {
		t.Errorf("new value = %d, want 42", r.env.Read(addr))
	}
	if r.st.AtomicsAtL2 != 1 || r.st.AtomicsAtL1 != 0 {
		t.Errorf("placement wrong: L1=%d L2=%d", r.st.AtomicsAtL1, r.st.AtomicsAtL2)
	}
}

// TestStoreBufferFlushCallback: Flush fires only after write-through
// acknowledgements return.
func TestStoreBufferFlushCallback(t *testing.T) {
	r := newRig(ProtoGPU)
	l1 := r.l1s[4]
	l1.TryIssue(r.cycle, &Txn{Kind: TxnStore, Addr: 0x3000, Class: core.Data, AOp: core.OpStore, Done: DoneFunc(func(int64, int64) {})})
	flushed := int64(-1)
	l1.Flush(r.cycle, func(c int64) { flushed = c })
	if flushed >= 0 {
		t.Fatal("flush fired before the write-through drained")
	}
	r.run(t, 2000)
	if flushed < 0 {
		t.Fatal("flush never fired")
	}
	if !l1.SBDrained() {
		t.Fatal("store buffer not drained")
	}
	// Immediate flush on a drained buffer fires synchronously.
	fired := false
	l1.Flush(r.cycle, func(int64) { fired = true })
	if !fired {
		t.Error("flush on drained buffer must fire immediately")
	}
}

// TestAcquireInvalidatePolicies: GPU drops valid lines; DeNovo keeps
// owned ones.
func TestAcquireInvalidatePolicies(t *testing.T) {
	for _, proto := range []Protocol{ProtoGPU, ProtoDeNovo} {
		r := newRig(proto)
		const addr = 0x2000
		line := addr / r.cfg.LineSize
		n := 0
		if proto == ProtoGPU {
			r.l1s[0].TryIssue(r.cycle, &Txn{Kind: TxnLoad, Addr: addr, Class: core.Data, AOp: core.OpLoad, Done: DoneFunc(func(int64, int64) { n++ })})
		} else {
			r.l1s[0].TryIssue(r.cycle, atomicTxn(addr, &n))
		}
		r.run(t, 2000)
		if !r.l1s[0].HoldsLine(line) {
			t.Fatalf("%v: warm-up failed", proto)
		}
		r.l1s[0].AcquireInvalidate()
		if proto == ProtoGPU {
			if r.l1s[0].HoldsLine(line) {
				t.Error("GPU acquire must drop valid lines")
			}
		} else {
			if !r.l1s[0].OwnsLine(line) {
				t.Error("DeNovo acquire must keep owned lines")
			}
		}
	}
}

// TestConfigGeometry sanity-checks the Table 2 derived sizes.
func TestConfigGeometry(t *testing.T) {
	cfg := Default(ProtoGPU, core.DRF0)
	if l1 := int64(cfg.L1Sets*cfg.L1Ways) * int64(cfg.LineSize); l1 != 32*1024 {
		t.Errorf("L1 size = %d", l1)
	}
	if l2 := int64(cfg.L2SetsPerBank*cfg.L2Ways) * int64(cfg.LineSize) * int64(cfg.Nodes()); l2 != 4*1024*1024 {
		t.Errorf("L2 size = %d", l2)
	}
	if cfg.Nodes() != 16 || cfg.NumCUs != 15 || cfg.CPUNode != 15 {
		t.Error("topology wrong")
	}
	if cfg.HomeNode(0) != 0 || cfg.HomeNode(17) != 1 {
		t.Error("home mapping wrong")
	}
	if cfg.WordAddr(0x1007) != 0x1004 || cfg.LineAddr(0x1007) != 0x40 {
		t.Error("address helpers wrong")
	}
	d := Discrete(core.DRF0)
	if d.L2Lat <= cfg.L2Lat || d.DRAMLat <= cfg.DRAMLat {
		t.Error("discrete config should be slower")
	}
}

func TestTxnKindStrings(t *testing.T) {
	for k, want := range map[TxnKind]string{TxnLoad: "load", TxnStore: "store", TxnAtomic: "atomic"} {
		if k.String() != want {
			t.Errorf("%d -> %q", k, k.String())
		}
	}
	if ProtoGPU.String() != "GPU" || ProtoDeNovo.String() != "DeNovo" {
		t.Error("protocol strings wrong")
	}
}

// TestApplyAtomicValueLayer: Env value ops are word-aligned.
func TestApplyAtomicValueLayer(t *testing.T) {
	r := newRig(ProtoGPU)
	old := r.env.ApplyAtomic(0x1002, core.OpAdd, 5) // unaligned address
	if old != 0 {
		t.Errorf("old = %d", old)
	}
	if r.env.Read(0x1000) != 5 {
		t.Errorf("word-aligned read = %d", r.env.Read(0x1000))
	}
}
