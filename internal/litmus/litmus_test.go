package litmus

import (
	"testing"

	"rats/internal/core"
)

func TestExprEval(t *testing.T) {
	rf := []int64{10, 20, 30}
	if v := ConstExpr(5).Eval(rf); v != 5 {
		t.Errorf("const = %d", v)
	}
	if v := RegExpr(1).Eval(rf); v != 20 {
		t.Errorf("reg = %d", v)
	}
	e := Expr{Const: 1, Regs: []Reg{0, 2}}
	if v := e.Eval(rf); v != 41 {
		t.Errorf("mixed = %d", v)
	}
	if !e.DependsOn(0) || e.DependsOn(1) {
		t.Error("DependsOn wrong")
	}
}

func TestGuards(t *testing.T) {
	rf := []int64{0, 4, 4, 5}
	for _, tc := range []struct {
		g    Guard
		want bool
	}{
		{NZ(0), false},
		{NZ(1), true},
		{EQZ(0), true},
		{EQZ(1), false},
		{EQConst(3, 5), true},
		{EQConst(3, 4), false},
		{EQReg(1, 2), true},
		{EQReg(1, 3), false},
		{EQEvenReg(1, 2), true},  // equal and even
		{EQEvenReg(3, 3), false}, // equal but odd
	} {
		if got := tc.g.Holds(rf); got != tc.want {
			t.Errorf("guard %+v = %v, want %v", tc.g, got, tc.want)
		}
	}
}

func TestBuilderRegistersAndGuards(t *testing.T) {
	p := New("t")
	th := p.Thread("t0")
	r0 := th.Load("X", core.Paired)
	r1 := th.RMW(core.OpAdd, "Y", 3, core.Commutative)
	th.WithGuards(NZ(r0), EQConst(r1, 1))
	th.Store("Z", 1, core.Data)
	th.EndGuards()
	th.Store("W", 1, core.Data)

	if th.NumRegs() != 2 {
		t.Fatalf("regs = %d", th.NumRegs())
	}
	if len(th.Ops[2].Guards) != 2 {
		t.Fatalf("guarded op has %d guards", len(th.Ops[2].Guards))
	}
	if len(th.Ops[3].Guards) != 0 {
		t.Fatal("EndGuards did not clear")
	}
	if !th.Ops[2].GuardUsesReg(r0) || !th.Ops[2].GuardUsesReg(r1) {
		t.Error("guard register uses missing")
	}
	if !th.Ops[2].UsesReg(r0) {
		t.Error("UsesReg must include guards")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	// Undefined register use.
	p := New("bad1")
	th := p.Thread("t")
	th.StoreExpr("X", RegExpr(3), core.Data)
	if err := p.Validate(); err == nil {
		t.Error("undefined register not caught")
	}
	// Undefined guard register.
	p2 := New("bad2")
	t2 := p2.Thread("t")
	t2.WithGuards(NZ(7))
	t2.Store("X", 1, core.Data)
	if err := p2.Validate(); err == nil {
		t.Error("undefined guard register not caught")
	}
	// No threads.
	if err := New("empty").Validate(); err == nil {
		t.Error("empty program not caught")
	}
}

func TestRelabelAndUnder(t *testing.T) {
	p := New("orig")
	th := p.Thread("t")
	th.Inc("C", core.Commutative)
	th.Store("D", 1, core.Data)
	p.SetInit("C", 5)
	p.QuantumDomain = []int64{0, 1}

	q := p.Under(core.DRF0)
	if q.Threads[0].Ops[0].Class != core.Paired {
		t.Error("DRF0 should strengthen commutative to paired")
	}
	if q.Threads[0].Ops[1].Class != core.Data {
		t.Error("data must stay data")
	}
	if q.Init["C"] != 5 || len(q.QuantumDomain) != 1+1 {
		t.Error("metadata not copied")
	}
	// Original untouched.
	if p.Threads[0].Ops[0].Class != core.Commutative {
		t.Error("Relabel mutated the original")
	}
	if q.Name == p.Name {
		t.Error("Under should rename")
	}
}

func TestLocsAndHasClass(t *testing.T) {
	p := New("t")
	th := p.Thread("t")
	th.Store("B", 1, core.Data)
	th.Store("A", 1, core.Quantum)
	th.Use(th.Load("C", core.Paired))
	p.SetInit("Z", 0)
	locs := p.Locs()
	want := []Loc{"A", "B", "C", "Z"}
	if len(locs) != len(want) {
		t.Fatalf("locs = %v", locs)
	}
	for i := range want {
		if locs[i] != want[i] {
			t.Fatalf("locs = %v, want %v", locs, want)
		}
	}
	if !p.HasClass(core.Quantum) || p.HasClass(core.Speculative) {
		t.Error("HasClass wrong")
	}
	if p.NumOps() != 4 { // 3 memory ops + 1 branch
		t.Errorf("NumOps = %d", p.NumOps())
	}
}

func TestOpPredicatesAndString(t *testing.T) {
	p := New("t")
	th := p.Thread("t")
	r := th.Load("X", core.Paired)
	th.Branch(RegExpr(r))
	th.LoadDep("Y", r, core.Data)
	th.CAS("Z", 0, 1, core.Paired)
	th.Dec("W", core.Quantum)
	th.LoadDiscard("V", core.Unpaired)

	load, branch, dep, cas := th.Ops[0], th.Ops[1], th.Ops[2], th.Ops[3]
	if !load.Reads() || load.Writes() {
		t.Error("load predicates")
	}
	if branch.Reads() || branch.Writes() || !branch.IsBranch {
		t.Error("branch predicates")
	}
	if !branch.UsesReg(r) {
		t.Error("branch must use its condition register")
	}
	if !dep.UsesReg(r) {
		t.Error("LoadDep must record address dependency")
	}
	if !cas.Reads() || !cas.Writes() {
		t.Error("CAS predicates")
	}
	if load.String() == "" || branch.String() == "" {
		t.Error("empty op strings")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSuiteValidates: every suite program passes structural validation
// and carries the classes its category implies.
func TestSuiteValidates(t *testing.T) {
	suite := Suite()
	if len(suite) < 20 {
		t.Fatalf("suite has only %d cases", len(suite))
	}
	seen := map[string]bool{}
	for _, tc := range suite {
		if err := tc.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Prog.Name, err)
		}
		if seen[tc.Prog.Name] {
			t.Errorf("duplicate suite test %s", tc.Prog.Name)
		}
		seen[tc.Prog.Name] = true
	}
	// Table 1 coverage: one use case per category.
	for c, prog := range map[core.Class]*Program{
		core.Unpaired:    WorkQueue(),
		core.Commutative: EventCounter(2, 2),
		core.NonOrdering: Flags(2),
		core.Quantum:     SplitCounter(),
		core.Speculative: Seqlocks(),
	} {
		if !prog.HasClass(c) {
			t.Errorf("%s does not use class %v", prog.Name, c)
		}
	}
}
