package system

import (
	"errors"
	"testing"

	"rats/internal/core"
	"rats/internal/sim/memsys"
	"rats/internal/trace"
	"rats/internal/workloads"
)

// runSkip builds a machine, toggles cycle skipping, and runs the trace.
func runSkip(t *testing.T, cfg memsys.Config, tr *trace.Trace, skip bool) *Result {
	t.Helper()
	s := New(cfg)
	s.SetCycleSkipping(skip)
	if err := s.Load(tr); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSkipEquivalence pins the wake-hint contract: for every workload ×
// config in the tier-1 suite, a run with event-driven fast-forwarding
// produces bit-identical Stats (including the final cycle count) to a
// cycle-by-cycle run. The skip-off reference processes every cycle in
// full — any wake hint that wrongly skips a productive cycle diverges
// an architectural counter here.
func TestSkipEquivalence(t *testing.T) {
	for _, e := range workloads.All() {
		for cfgName, cfg := range allConfigs() {
			on := runSkip(t, cfg, e.Build(workloads.Test), true)
			off := runSkip(t, cfg, e.Build(workloads.Test), false)
			if on.Stats != off.Stats {
				t.Errorf("%s/%s: stats diverge with cycle skipping\non:  %+v\noff: %+v",
					e.Name, cfgName, on.Stats, off.Stats)
			}
			if on.Stats.Cycles != off.Stats.Cycles {
				t.Errorf("%s/%s: final cycle %d (skip) vs %d (reference)",
					e.Name, cfgName, on.Stats.Cycles, off.Stats.Cycles)
			}
		}
	}
}

// TestSkipEquivalenceUnderFaults repeats the equivalence check with the
// full metamorphic fault spec active: same seed must mean the same
// perturbations, timings, and tallies whether or not idle cycles are
// fast-forwarded (the injector's PRNG is consumed only at processed
// cycles, and its pressure windows are pure functions of the cycle).
func TestSkipEquivalenceUnderFaults(t *testing.T) {
	configs := map[string]memsys.Config{
		"GPU/DRF0":    memsys.Default(memsys.ProtoGPU, core.DRF0),
		"DeNovo/DRF1": memsys.Default(memsys.ProtoDeNovo, core.DRF1),
	}
	for _, e := range workloads.Micro() {
		for cfgName, base := range configs {
			for seed := int64(1); seed <= 2; seed++ {
				cfg := base
				cfg.Faults = mustSpec(t, metamorphicSpec)
				cfg.FaultSeed = seed

				onSys := New(cfg)
				if err := onSys.Load(e.Build(workloads.Test)); err != nil {
					t.Fatal(err)
				}
				on, err := onSys.Run()
				if err != nil {
					t.Fatalf("%s/%s seed %d on: %v", e.Name, cfgName, seed, err)
				}

				offSys := New(cfg)
				offSys.SetCycleSkipping(false)
				if err := offSys.Load(e.Build(workloads.Test)); err != nil {
					t.Fatal(err)
				}
				off, err := offSys.Run()
				if err != nil {
					t.Fatalf("%s/%s seed %d off: %v", e.Name, cfgName, seed, err)
				}

				if on.Stats != off.Stats {
					t.Errorf("%s/%s seed %d: faulted stats diverge with cycle skipping\non:  %+v\noff: %+v",
						e.Name, cfgName, seed, on.Stats, off.Stats)
				}
				onCounts, _ := onSys.FaultCounts()
				offCounts, _ := offSys.FaultCounts()
				if onCounts != offCounts {
					t.Errorf("%s/%s seed %d: fault tallies diverge\non:  %+v\noff: %+v",
						e.Name, cfgName, seed, onCounts, offCounts)
				}
			}
		}
	}
}

// TestSkipEquivalenceWedgedWatchdog asserts failure timelines match too:
// a wedged run trips the liveness watchdog at the identical cycle in
// both modes (wedged warps keep their CU's wake hint hot, so the
// watchdog window is walked cycle-exactly even when skipping).
func TestSkipEquivalenceWedgedWatchdog(t *testing.T) {
	run := func(skip bool) *DiagnosticError {
		cfg := memsys.Default(memsys.ProtoGPU, core.DRF0)
		cfg.Faults = mustSpec(t, "wedge:warp=1,from=0")
		cfg.FaultSeed = 1
		cfg.WatchdogWindow = 5000
		s := New(cfg)
		s.SetCycleSkipping(skip)
		if err := s.Load(barrierTrace()); err != nil {
			t.Fatal(err)
		}
		_, err := s.Run()
		var diag *DiagnosticError
		if !errors.As(err, &diag) {
			t.Fatalf("wedged run (skip=%v): expected *DiagnosticError, got %v", skip, err)
		}
		return diag
	}
	on, off := run(true), run(false)
	if on.Cycle != off.Cycle {
		t.Errorf("watchdog fired at cycle %d (skip) vs %d (reference)", on.Cycle, off.Cycle)
	}
	if on.RetiredOps != off.RetiredOps {
		t.Errorf("retired ops at failure: %d (skip) vs %d (reference)", on.RetiredOps, off.RetiredOps)
	}
}
