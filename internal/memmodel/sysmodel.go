package memmodel

import (
	"strconv"
	"time"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel/rel"
	"rats/internal/memmodel/telemetry"
)

// The system-centric model (Section 3.8): it enumerates every execution a
// straightforward compliant DRFrlx system may produce. The system
// preserves, per thread:
//
//   - per-location program order (per-location SC / cache coherence),
//   - syntactic address/data/control dependencies,
//   - paired-read → anything-later (acquire),
//   - anything-earlier → paired-write (release),
//   - program order between paired/unpaired atomics (successive unpaired
//     accesses occur in program order),
//
// and reorders everything else freely. Executions are total orders
// consistent with this preserved program order, with loads reading the
// latest store. Comparing the reachable final states against the SC
// states of the quantum-equivalent program validates Theorem 3.1 on
// litmus tests.

// PreservedPO computes the preserved-program-order relation over a
// program's events under the given model's effective labelling.
func PreservedPO(p *litmus.Program) rel.Rel {
	lay := layout(p)
	ppo := rel.New(lay.n)
	for t, th := range p.Threads {
		// defs[r] = op index that defined register r.
		defs := map[litmus.Reg]int{}
		// ctrlFrom: first op index after which all ops are
		// control-dependent on the defining ops in ctrlDefs.
		type ctrlDep struct {
			after int
			def   int
		}
		var ctrls []ctrlDep
		for i, op := range th.Ops {
			if op.IsBranch {
				for _, rg := range op.Cond.Regs {
					if d, ok := defs[rg]; ok {
						ctrls = append(ctrls, ctrlDep{after: i, def: d})
					}
				}
				continue
			}
			idI := lay.id[t][i]
			// Dependencies: operand/expected/address/guard registers.
			depRegs := [][]litmus.Reg{op.Operand.Regs, op.Expected.Regs, op.AddrDeps}
			for _, g := range op.Guards {
				depRegs = append(depRegs, g.Regs())
			}
			for _, regs := range depRegs {
				for _, rg := range regs {
					if d, ok := defs[rg]; ok {
						ppo.Set(lay.id[t][d], idI)
					}
				}
			}
			// Control dependencies from earlier branches.
			for _, c := range ctrls {
				if c.after < i {
					ppo.Set(lay.id[t][c.def], idI)
				}
			}
			// Ordering against earlier memory ops.
			for j := 0; j < i; j++ {
				pj := th.Ops[j]
				if pj.IsBranch {
					continue
				}
				idJ := lay.id[t][j]
				switch {
				case pj.Loc == op.Loc:
					// Per-location SC.
					ppo.Set(idJ, idI)
				case (pj.Class == core.Paired || pj.Class == core.Acquire) && pj.Reads():
					// Acquire: the read is ordered before all later ops.
					ppo.Set(idJ, idI)
				case (op.Class == core.Paired || op.Class == core.Release) && op.Writes():
					// Release: all earlier ops ordered before the write.
					ppo.Set(idJ, idI)
				case isOrderedAtomic(pj.Class) && isOrderedAtomic(op.Class):
					// Paired/unpaired (and acquire/release) atomics
					// respect program order among themselves.
					ppo.Set(idJ, idI)
				}
			}
			if op.Dst != litmus.NoReg {
				defs[op.Dst] = i
			}
		}
	}
	return ppo
}

// isOrderedAtomic reports whether a class keeps program order with other
// atomics (overlap at most atomic-serial).
func isOrderedAtomic(c core.Class) bool {
	return c == core.Paired || c == core.Unpaired || c == core.Acquire || c == core.Release
}

// SystemResults enumerates every final memory state a straightforward
// DRFrlx system may produce for the program (quantum accesses execute
// with their real values — this models the machine, not the
// quantum-equivalent program). limit bounds the number of explored
// executions (0 = DefaultLimit).
func SystemResults(p *litmus.Program, limit int) (map[string]bool, error) {
	return SystemResultsWith(p, limit, nil)
}

// SystemResultsWith is SystemResults with instrumentation: the telemetry
// check (nil = disabled) counts completed system executions, DFS
// transitions, and seen-state memo hits, and is marked Begin/Finish
// around the search.
func SystemResultsWith(p *litmus.Program, limit int, tel *telemetry.Check) (map[string]bool, error) {
	if err := p.Validate(); err != nil {
		tel.Begin(int64(limit))
		tel.Finish(telemetry.StateFailed)
		return nil, err
	}
	if limit == 0 {
		limit = DefaultLimit
	}
	tel.Begin(int64(limit))
	start := time.Now()
	lay := layout(p)
	ppo := PreservedPO(p)

	// Per-event static info.
	type evInfo struct {
		thread, opIndex int
		op              litmus.Op
	}
	evs := make([]evInfo, lay.n)
	preds := make([][]int, lay.n)
	for t, th := range p.Threads {
		for i, op := range th.Ops {
			id := lay.id[t][i]
			if id < 0 {
				continue
			}
			evs[id] = evInfo{thread: t, opIndex: i, op: op}
		}
	}
	for i := 0; i < lay.n; i++ {
		for j := 0; j < lay.n; j++ {
			if ppo.Has(j, i) {
				preds[i] = append(preds[i], j)
			}
		}
	}

	results := map[string]bool{}
	mem := map[litmus.Loc]int64{}
	locs := p.Locs()
	for _, l := range locs {
		mem[l] = p.Init[l]
	}
	regs := make([][]int64, len(p.Threads))
	for t, th := range p.Threads {
		regs[t] = make([]int64, th.NumRegs())
	}
	done := make([]bool, lay.n)
	nDone := 0
	count := 0

	// Seen-state memoization: the search state is fully determined by
	// (done set, memory, register files) — the preds relation is static —
	// and nDone strictly increases along any path, so the state graph is
	// a DAG. Once a state has been explored, every final result reachable
	// from it is already in the results set, and revisiting it (different
	// interleavings of commuting prefixes converge on the same state)
	// would only re-derive them. This collapses the factorially redundant
	// part of the search, which is what makes the exhaustive theorem
	// fuzzer run without an execution-count escape hatch.
	seen := map[string]bool{}
	var keyBuf []byte
	stateKey := func() string {
		b := keyBuf[:0]
		for i := 0; i < lay.n; i++ {
			if done[i] {
				b = append(b, '1')
			} else {
				b = append(b, '0')
			}
		}
		for _, l := range locs {
			b = strconv.AppendInt(b, mem[l], 10)
			b = append(b, ',')
		}
		for t := range regs {
			for _, v := range regs[t] {
				b = strconv.AppendInt(b, v, 10)
				b = append(b, ',')
			}
		}
		keyBuf = b
		return string(b)
	}

	var step func() error
	step = func() error {
		if nDone == lay.n {
			count++
			if count > limit {
				return newLimitError(p.Name, "system model", limit, int64(count-1), start, tel)
			}
			tel.IncEnumerated()
			results[resultKey(mem)] = true
			return nil
		}
		k := stateKey()
		if seen[k] {
			tel.AddMemoHits(1)
			return nil
		}
		seen[k] = true
		tel.IncTransition()
	next:
		for i := 0; i < lay.n; i++ {
			if done[i] {
				continue
			}
			for _, pr := range preds[i] {
				if !done[pr] {
					continue next
				}
			}
			e := evs[i]
			op := e.op
			if !op.GuardsHold(regs[e.thread]) {
				// Skipped guarded op: executes as a no-op.
				done[i] = true
				nDone++
				if err := step(); err != nil {
					return err
				}
				done[i] = false
				nDone--
				continue
			}
			oldMem := mem[op.Loc]
			var oldReg int64
			if op.Dst != litmus.NoReg {
				oldReg = regs[e.thread][op.Dst]
				regs[e.thread][op.Dst] = oldMem
			}
			if op.Writes() {
				operand := op.Operand.Eval(regs[e.thread])
				expected := op.Expected.Eval(regs[e.thread])
				mem[op.Loc] = op.AOp.Apply(oldMem, operand, expected)
			}
			done[i] = true
			nDone++
			if err := step(); err != nil {
				return err
			}
			done[i] = false
			nDone--
			mem[op.Loc] = oldMem
			if op.Dst != litmus.NoReg {
				regs[e.thread][op.Dst] = oldReg
			}
		}
		return nil
	}
	if err := step(); err != nil {
		tel.Finish(telemetry.StateLimit)
		return nil, err
	}
	tel.Finish(telemetry.StateDone)
	return results, nil
}

// TheoremReport is the outcome of validating Theorem 3.1 on one program:
// whether every result the system model can produce is an SC result of
// the quantum-equivalent program.
type TheoremReport struct {
	Prog string
	// Legal is the DRFrlx verdict of the programmer-centric model.
	Legal bool
	// SystemSC reports whether system results ⊆ SC(quantum-equivalent)
	// results.
	SystemSC bool
	// NonSCResults lists system-producible results outside the SC set.
	NonSCResults []string
	SystemCount  int
	SCCount      int
}

// ValidateTheorem runs both models on a program under DRFrlx and compares
// result sets. Theorem 3.1 requires SystemSC whenever Legal.
func ValidateTheorem(p *litmus.Program) (*TheoremReport, error) {
	return ValidateTheoremWith(p, CheckOptions{}, nil)
}

// ValidateTheoremWith is ValidateTheorem with instrumentation: opts
// configures (and may instrument) the programmer-centric check, while
// sysTel instruments the system-model search as its own telemetry check.
func ValidateTheoremWith(p *litmus.Program, opts CheckOptions, sysTel *telemetry.Check) (*TheoremReport, error) {
	verdict, err := CheckProgramWith(p, core.DRFrlx, opts)
	if err != nil {
		return nil, err
	}
	sys, err := SystemResultsWith(p.Under(core.DRFrlx), opts.Limit, sysTel)
	if err != nil {
		return nil, err
	}
	rep := &TheoremReport{
		Prog: p.Name, Legal: verdict.Legal, SystemSC: true,
		SystemCount: len(sys), SCCount: len(verdict.SCResults),
	}
	for k := range sys {
		if !verdict.SCResults[k] {
			rep.SystemSC = false
			rep.NonSCResults = append(rep.NonSCResults, k)
		}
	}
	return rep, nil
}
