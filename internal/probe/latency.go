package probe

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rats/internal/hist"
)

// LatencyKey keys latency histograms by op class and hit level (the
// consistency config is the run itself; harness.LatencySweep adds it).
type LatencyKey struct {
	Op    SpanOp
	Level HitLevel
}

func (k LatencyKey) String() string { return k.Op.String() + "/" + k.Level.String() }

// LatencyEntry is the aggregate for one key: the latency distribution
// plus the summed per-segment decomposition.
type LatencyEntry struct {
	Hist hist.Histogram
	Segs [NumSegs]int64
}

// LatencySink aggregates completed spans into fixed-allocation latency
// histograms keyed by (op class, hit level). It is safe to snapshot from
// another goroutine (the live /metrics endpoint) while the simulation
// thread records.
type LatencySink struct {
	sink *SpanSink

	mu      sync.Mutex
	entries map[LatencyKey]*LatencyEntry
}

// NewLatencySink builds an empty sink.
func NewLatencySink() *LatencySink {
	l := &LatencySink{entries: map[LatencyKey]*LatencyEntry{}}
	l.sink = NewSpanSink(l.record)
	return l
}

// Emit consumes one event.
func (l *LatencySink) Emit(ev Event) { l.sink.Emit(ev) }

// Close is a no-op.
func (l *LatencySink) Close() error { return nil }

// Completed returns the number of spans recorded.
func (l *LatencySink) Completed() int64 { return l.sink.Completed() }

// Open returns the number of unterminated spans.
func (l *LatencySink) Open() int { return l.sink.Open() }

func (l *LatencySink) record(sp Span) {
	k := LatencyKey{Op: sp.Op, Level: sp.Level}
	l.mu.Lock()
	e := l.entries[k]
	if e == nil {
		e = &LatencyEntry{}
		l.entries[k] = e
	}
	e.Hist.Record(sp.Latency())
	for i, v := range sp.Segs {
		e.Segs[i] += v
	}
	l.mu.Unlock()
}

// Snapshot returns a deep copy of the aggregates, keys sorted (safe to
// call concurrently with recording).
func (l *LatencySink) Snapshot() map[LatencyKey]LatencyEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[LatencyKey]LatencyEntry, len(l.entries))
	for k, e := range l.entries {
		out[k] = *e
	}
	return out
}

// SortKeys orders latency keys deterministically (op, then level).
func SortKeys[V any](m map[LatencyKey]V) []LatencyKey {
	keys := make([]LatencyKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Op != keys[j].Op {
			return keys[i].Op < keys[j].Op
		}
		return keys[i].Level < keys[j].Level
	})
	return keys
}

// Table renders the per-(op, hit-level) latency summary with the mean
// per-segment decomposition (the `ratsim -latency` output).
func (l *LatencySink) Table() string {
	snap := l.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "  %-8s %-10s %9s %7s %7s %7s %7s %7s   %s\n",
		"op", "level", "spans", "p50", "p90", "p99", "p99.9", "max", "mean cycles per segment")
	for _, k := range SortKeys(snap) {
		e := snap[k]
		s := e.Hist.Summarize()
		fmt.Fprintf(&b, "  %-8s %-10s %9d %7d %7d %7d %7d %7d  ",
			k.Op, k.Level, s.Count, s.P50, s.P90, s.P99, s.P999, s.Max)
		for seg := Seg(0); seg < NumSegs; seg++ {
			fmt.Fprintf(&b, " %s=%.1f", seg, float64(e.Segs[seg])/float64(s.Count))
		}
		b.WriteByte('\n')
	}
	if len(snap) == 0 {
		b.WriteString("  (no completed transactions)\n")
	}
	return b.String()
}
