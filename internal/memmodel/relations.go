package memmodel

import (
	"rats/internal/core"
	"rats/internal/litmus"

	"rats/internal/memmodel/rel"
)

// Relations bundles the per-execution relations of Sections 2.3 and 3.3:
// program order, the paper's conflict order (all conflicting accesses
// ordered by the SC total order T — a superset of Herd's co/rf/fr),
// synchronization order so1, happens-before hb1, and the derived
// program/conflict-graph reachability relations the non-ordering detector
// needs.
type Relations struct {
	N int
	// Core relations.
	PO       rel.Rel // program order
	Conflict rel.Rel // symmetric conflict (same loc, ≥1 write)
	CO       rel.Rel // conflict order: conflict ∩ (T-earlier × T-later)
	SO1      rel.Rel // synchronization order 1 (paired W → paired R)
	HB1      rel.Rel // happens-before-1 = (po ∪ so1)+
	Race     rel.Rel // symmetric: conflict, cross-thread, hb1-unordered

	// Program/conflict graph reachability.
	G      rel.Rel // po ∪ co (graph edges)
	Reach  rel.Rel // G* (reflexive)
	POPath rel.Rel // G* ; po ; G*  (paths containing ≥1 po edge)

	// Event sets.
	Present        []bool
	IsW, IsR       []bool
	IsAtomic, IsPU []bool // PU: paired or unpaired
	Class          []core.Class
	Observed       []bool // loaded value feeds a later dependency
	SameLoc        rel.Rel
	ValidPath      rel.Rel // hb1 ∪ homogeneous valid ordering paths
}

// set builds a predicate vector over the execution's present events.
func set(ex *Execution, pred func(ev Event) bool) []bool {
	out := make([]bool, len(ex.Events))
	for i, ev := range ex.Events {
		out[i] = ex.Present[i] && pred(ev)
	}
	return out
}

// observedSet computes, per the paper's Herd approximation of
// observability, which events' loaded values are observed: the destination
// register feeds the address, data, or control (branch/guard) inputs of a
// later instruction of its thread. The analysis is execution-aware: an op
// skipped by a failed guard does not use its operand registers in that
// execution (the misspeculated seqlock read whose value is discarded),
// but guard conditions themselves are always evaluated and therefore
// always count as uses.
func observedSet(ex *Execution, lay eventLayout) []bool {
	p := ex.Prog
	out := make([]bool, lay.n)
	for t, th := range p.Threads {
		for i, op := range th.Ops {
			if op.IsBranch || op.Dst == litmus.NoReg {
				continue
			}
			id := lay.id[t][i]
			if !ex.Present[id] {
				continue
			}
			for j := i + 1; j < len(th.Ops); j++ {
				later := th.Ops[j]
				if later.IsBranch {
					if later.Cond.DependsOn(op.Dst) {
						out[id] = true
						break
					}
					continue
				}
				if later.GuardUsesReg(op.Dst) {
					out[id] = true
					break
				}
				if ex.Present[lay.id[t][j]] && later.UsesReg(op.Dst) {
					out[id] = true
					break
				}
			}
		}
	}
	return out
}

// BuildRelations computes all relations for one execution.
func BuildRelations(ex *Execution) *Relations {
	n := len(ex.Events)
	r := &Relations{N: n}
	lay := layout(ex.Prog)

	r.IsW = set(ex, func(ev Event) bool { return ev.Op.Writes() })
	r.IsR = set(ex, func(ev Event) bool { return ev.Op.Reads() })
	r.IsAtomic = set(ex, func(ev Event) bool { return ev.Op.Class.IsAtomic() })
	r.IsPU = set(ex, func(ev Event) bool {
		return ev.Op.Class == core.Paired || ev.Op.Class == core.Unpaired
	})
	r.Present = append([]bool(nil), ex.Present...)
	r.Class = make([]core.Class, n)
	for i, ev := range ex.Events {
		r.Class[i] = ev.Op.Class
	}
	r.Observed = observedSet(ex, lay)

	// Program order, same-location, conflict.
	r.PO = rel.New(n)
	r.SameLoc = rel.New(n)
	r.Conflict = rel.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !ex.Present[i] || !ex.Present[j] {
				continue
			}
			ei, ej := ex.Events[i], ex.Events[j]
			if ei.Thread == ej.Thread && ei.OpIndex < ej.OpIndex {
				r.PO.Set(i, j)
			}
			if ei.Op.Loc == ej.Op.Loc {
				r.SameLoc.Set(i, j)
				if ei.Op.Writes() || ej.Op.Writes() {
					r.Conflict.Set(i, j)
				}
			}
		}
	}

	// Conflict order: conflicting accesses in T order.
	tBefore := rel.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !ex.Present[i] || !ex.Present[j] {
				continue
			}
			if ex.Events[i].TPos < ex.Events[j].TPos {
				tBefore.Set(i, j)
			}
		}
	}
	r.CO = r.Conflict.Inter(tBefore)

	// so1: paired write → paired read, conflicting, T-ordered. The
	// Section 7 extension classes participate: a release write
	// synchronizes with a paired/acquire read (sound on the simulated
	// multi-copy-atomic machine).
	pairedW := make([]bool, n)
	pairedR := make([]bool, n)
	for i := 0; i < n; i++ {
		switch r.Class[i] {
		case core.Paired:
			pairedW[i] = r.IsW[i]
			pairedR[i] = r.IsR[i]
		case core.Release:
			pairedW[i] = r.IsW[i]
		case core.Acquire:
			pairedR[i] = r.IsR[i]
		}
	}
	r.SO1 = rel.Cross(pairedW, pairedR).Inter(r.CO)

	// hb1 = (po ∪ so1)+.
	r.HB1 = r.PO.Union(r.SO1).TransClosure()

	// Race: conflicting, different threads, hb1-unordered (symmetric).
	crossThread := rel.New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || !ex.Present[i] || !ex.Present[j] {
				continue
			}
			if ex.Events[i].Thread != ex.Events[j].Thread {
				crossThread.Set(i, j)
			}
		}
	}
	r.Race = r.Conflict.Inter(crossThread).Diff(r.HB1.Sym())

	// Program/conflict graph reachability.
	r.G = r.PO.Union(r.CO)
	r.Reach = r.G.ReflTransClosure()
	r.POPath = r.Reach.Compose(r.PO).Compose(r.Reach)

	// Valid ordering paths (per Listing 7's operational encoding, which
	// resolves the prose definition): a valid path is an ordering path
	// (it contains a program-order edge) made entirely of hb1 edges
	// (po ∪ so1 — each individually enforced by the system), entirely of
	// same-location edges, or entirely of edges between paired/unpaired
	// accesses. Note it is the path's *edges* that must be in po ∪ so1 —
	// merely having hb1-ordered endpoints is NOT enough: a bare so1 edge
	// is not an ordering path, and crediting it would declare programs
	// legal whose non-ordering stores a compliant system can reorder into
	// non-SC results (found by the exhaustive theorem fuzzer).
	h1 := r.G.Inter(r.SameLoc)
	vo1 := h1.ReflTransClosure().Compose(r.PO.Inter(r.SameLoc)).Compose(h1.ReflTransClosure())
	puCross := rel.Cross(r.IsPU, r.IsPU)
	h2 := r.G.Inter(puCross)
	vo2 := h2.ReflTransClosure().Compose(r.PO.Inter(puCross)).Compose(h2.ReflTransClosure())
	h3 := r.PO.Union(r.SO1)
	vo3 := h3.ReflTransClosure().Compose(r.PO).Compose(h3.ReflTransClosure())
	r.ValidPath = vo3.Union(vo1).Union(vo2)

	return r
}
