package litmus

import (
	"strings"
	"testing"

	"rats/internal/core"
)

const mpSource = `
litmus "MP_from_text"
init D=0 F=0

thread producer
  store D 1 data
  store F 1 paired

thread consumer
  r0 = load F paired
  if r0 != 0 {
    r1 = load D data
  }
  use r1
`

func TestParseMP(t *testing.T) {
	p, err := Parse(mpSource)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "MP_from_text" {
		t.Errorf("name %q", p.Name)
	}
	if len(p.Threads) != 2 {
		t.Fatalf("%d threads", len(p.Threads))
	}
	prod, cons := p.Threads[0], p.Threads[1]
	if prod.Name != "producer" || len(prod.Ops) != 2 {
		t.Fatalf("producer wrong: %+v", prod)
	}
	if prod.Ops[1].Class != core.Paired || prod.Ops[1].Loc != "F" {
		t.Error("flag store wrong")
	}
	if len(cons.Ops) != 3 { // load, guarded load, branch(use)
		t.Fatalf("consumer has %d ops", len(cons.Ops))
	}
	guarded := cons.Ops[1]
	if len(guarded.Guards) != 1 || guarded.Guards[0].Op != GuardNE {
		t.Fatalf("guard wrong: %+v", guarded.Guards)
	}
	if !cons.Ops[2].IsBranch {
		t.Error("use should become a branch marker")
	}
}

func TestParseRMWAndCAS(t *testing.T) {
	src := `
litmus "rmw"
quantum-domain 0 1 2
thread t0
  inc C commutative
  r0 = add C 5 quantum
  r1 = cas L 0 1 paired
  if r1 == 0 && r0 == r1 {
    store D r0+r1+2 data
  }
  xchg X 9 speculative
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ops := p.Threads[0].Ops
	if ops[0].AOp != core.OpInc || ops[0].Dst != NoReg {
		t.Error("inc wrong")
	}
	if ops[1].AOp != core.OpAdd || ops[1].Operand.Const != 5 || ops[1].Dst == NoReg {
		t.Error("add wrong")
	}
	if ops[2].AOp != core.OpCAS || ops[2].Expected.Const != 0 || ops[2].Operand.Const != 1 {
		t.Error("cas wrong")
	}
	st := ops[3]
	if len(st.Guards) != 2 {
		t.Fatalf("guards: %+v", st.Guards)
	}
	if st.Operand.Const != 2 || len(st.Operand.Regs) != 2 {
		t.Errorf("store expr wrong: %+v", st.Operand)
	}
	if ops[4].AOp != core.OpExchange || ops[4].Class != core.Speculative {
		t.Error("xchg wrong")
	}
	if len(p.QuantumDomain) != 3 {
		t.Error("domain lost")
	}
}

func TestParseSeqlockWithEven(t *testing.T) {
	src := `
litmus "seq"
thread reader
  r0 = load SEQ paired
  r1 = load D speculative
  r2 = add SEQ 0 paired
  if r0 == r2 even {
    store OUT r1 data
  }
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Threads[0].Ops[3].Guards[0]
	if g.Op != GuardEQEven {
		t.Fatalf("guard %+v", g)
	}
}

func TestParseErrors(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want string
	}{
		{"store X 1 data", "outside a thread"},
		{"thread t\n  load X bogus", "unknown access class"},
		{"thread t\n  frobnicate X", "unknown statement"},
		{"thread t\n  store X r9 data", "unknown term"},
		{"thread t\n  if r0 != 0 {", "unknown term"}, // guard on undefined register
		{"thread t\n  r0 = load X data\n  if r0 != 0 {\n  store Y 1 data", "unclosed"},
		{"thread t\n  }", "unmatched"},
		{"init X", "bad init"},
		{"quantum-domain q", "bad domain"},
		{"thread t\n  r0 = load X data\n  r0 = load X data", "redefined"},
		{"thread t\n  use r4", "undefined register"},
		{"thread t\n  if r0 < 0 {\n  }", "bad condition"},
	} {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) error %q, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("litmus \"x\"\nthread t\n  bogus X")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T", err)
	}
	if pe.Line != 3 {
		t.Errorf("line = %d, want 3", pe.Line)
	}
}

// opsEqual compares two programs structurally.
func opsEqual(a, b *Program) bool {
	if len(a.Threads) != len(b.Threads) {
		return false
	}
	for i := range a.Threads {
		ta, tb := a.Threads[i], b.Threads[i]
		if len(ta.Ops) != len(tb.Ops) {
			return false
		}
		for j := range ta.Ops {
			oa, ob := ta.Ops[j], tb.Ops[j]
			if oa.IsBranch != ob.IsBranch || oa.Class != ob.Class || oa.AOp != ob.AOp ||
				oa.Loc != ob.Loc || oa.Dst != ob.Dst || len(oa.Guards) != len(ob.Guards) ||
				oa.Operand.Eval(make([]int64, 16)) != ob.Operand.Eval(make([]int64, 16)) {
				return false
			}
		}
	}
	return true
}

// TestFormatParseRoundTrip: every suite program survives
// Format -> Parse structurally.
func TestFormatParseRoundTrip(t *testing.T) {
	for _, tc := range Suite() {
		text := Format(tc.Prog)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v\n%s", tc.Prog.Name, err, text)
		}
		if back.Name != tc.Prog.Name {
			t.Errorf("%s: name lost", tc.Prog.Name)
		}
		if !opsEqual(tc.Prog, back) {
			t.Errorf("%s: round trip changed structure:\n%s", tc.Prog.Name, text)
		}
		if len(back.Init) != len(tc.Prog.Init) || len(back.QuantumDomain) != len(tc.Prog.QuantumDomain) {
			t.Errorf("%s: metadata lost", tc.Prog.Name)
		}
	}
}

func TestFormatReadable(t *testing.T) {
	out := Format(Seqlocks())
	for _, want := range []string{"litmus \"Seqlocks\"", "thread writer", "cas SEQ", "speculative", "if", "even"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}
