package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLookupInsert(t *testing.T) {
	a := NewArray(4, 2)
	if a.Lookup(100) != Invalid {
		t.Fatal("empty cache should miss")
	}
	if _, ev := a.Insert(100, Valid, false); ev {
		t.Fatal("no eviction expected")
	}
	if a.Lookup(100) != Valid {
		t.Fatal("inserted line should hit")
	}
	// Same set (4 sets): 100 % 4 == 0; 104 % 4 == 0.
	a.Insert(104, Owned, true)
	if a.Lookup(104) != Owned {
		t.Fatal("owned line should hit")
	}
	// Third line in the same set evicts LRU (line 100, untouched since
	// 104's insert... but 100 was looked up; touch 104 to make 100 LRU).
	a.Lookup(104)
	v, ev := a.Insert(108, Valid, false)
	if !ev || v.LineAddr != 100 {
		t.Fatalf("expected eviction of 100, got %+v ev=%v", v, ev)
	}
}

func TestInPlaceUpgrade(t *testing.T) {
	a := NewArray(4, 2)
	a.Insert(8, Valid, false)
	if _, ev := a.Insert(8, Owned, true); ev {
		t.Fatal("in-place upgrade must not evict")
	}
	if a.Peek(8) != Owned {
		t.Fatal("upgrade lost")
	}
	a.SetDirty(8)
	if got := a.Invalidate(8); got != Owned {
		t.Fatalf("Invalidate returned %v", got)
	}
	if a.Peek(8) != Invalid {
		t.Fatal("line survived invalidation")
	}
}

func TestFlashInvalidateKeep(t *testing.T) {
	a := NewArray(8, 4)
	a.Insert(1, Valid, false)
	a.Insert(2, Owned, true)
	a.Insert(3, Valid, false)
	n := a.FlashInvalidate(func(l Line) bool { return l.State == Owned })
	if n != 2 {
		t.Fatalf("dropped %d, want 2", n)
	}
	if a.Peek(2) != Owned || a.Peek(1) != Invalid || a.Peek(3) != Invalid {
		t.Fatal("keep predicate not honoured")
	}
	if a.CountState(Owned) != 1 || a.CountState(Valid) != 0 {
		t.Fatal("counts wrong")
	}
	// nil keep drops everything.
	if got := a.FlashInvalidate(nil); got != 1 {
		t.Fatalf("second flash dropped %d, want 1", got)
	}
}

// TestLRUProperty: with an access sequence over a single set, the victim
// is always the least recently used line.
func TestLRUProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArray(1, 4)
		// Model of recency.
		var order []uint64 // most recent last
		touch := func(line uint64) {
			for i, l := range order {
				if l == line {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append(order, line)
		}
		for i := 0; i < 200; i++ {
			line := uint64(rng.Intn(8))
			if a.Lookup(line) != Invalid {
				touch(line)
				continue
			}
			v, ev := a.Insert(line, Valid, false)
			if ev {
				if v.LineAddr != order[0] {
					return false
				}
				order = order[1:]
			}
			touch(line)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRLifecycle(t *testing.T) {
	m := NewMSHR(2, 2)
	if m.Full() || m.Lookup(5) != nil {
		t.Fatal("fresh MSHR wrong")
	}
	e := m.Allocate(5, true, 1)
	m.Coalesce(e, Waiter{Store: SBEntry{Line: 5, Txn: 1}}, 1)
	if !m.CanCoalesce(e) {
		t.Fatal("one waiter of two targets should coalesce")
	}
	m.Coalesce(e, Waiter{Store: SBEntry{Line: 5, Txn: 2}}, 2)
	if m.CanCoalesce(e) {
		t.Fatal("target cap not enforced")
	}
	m.Allocate(9, false, 2)
	if !m.Full() {
		t.Fatal("capacity 2 should be full")
	}
	ws := m.Release(5, nil)
	if len(ws) != 2 || ws[0].Store.Txn != 1 || ws[1].Store.Txn != 2 || m.Outstanding() != 1 {
		t.Fatal("release wrong")
	}
	// Released entries recycle with their waiter lists cleared.
	e2 := m.Allocate(5, false, 3)
	if len(e2.Waiters) != 0 {
		t.Fatal("recycled entry kept stale waiters")
	}
}

func TestMSHRPanics(t *testing.T) {
	m := NewMSHR(1, 4)
	m.Allocate(1, false, 1)
	for _, fn := range []func(){
		func() { m.Allocate(2, false, 2) }, // full
		func() { m.Release(3, nil) },    // absent
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	// Double allocate panics even with room.
	m2 := NewMSHR(4, 4)
	m2.Allocate(1, false, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected double-allocate panic")
		}
	}()
	m2.Allocate(1, true, 2)
}

func TestStoreBuffer(t *testing.T) {
	b := NewStoreBuffer(2)
	if !b.Drained() || b.Full() {
		t.Fatal("fresh buffer wrong")
	}
	b.Push(SBEntry{Line: 1, Txn: 1})
	b.Push(SBEntry{Line: 2, Txn: 2})
	if !b.Full() || b.Drained() || b.Len() != 2 {
		t.Fatal("full buffer wrong")
	}
	if e, ok := b.Peek(); !ok || e.Txn != 1 {
		t.Fatal("peek wrong")
	}
	if e, ok := b.Pop(); !ok || e.Txn != 1 || b.Unacked() != 1 {
		t.Fatal("pop wrong")
	}
	b.Pop()
	if b.Drained() {
		t.Fatal("unacked entries must block drain")
	}
	b.Ack()
	b.Ack()
	if !b.Drained() {
		t.Fatal("acked buffer should be drained")
	}
	if _, ok := b.Pop(); ok {
		t.Fatal("empty pop should report not-ok")
	}
}

func TestStoreBufferPanics(t *testing.T) {
	b := NewStoreBuffer(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected ack panic")
			}
		}()
		b.Ack()
	}()
	b.Push(SBEntry{Line: 1})
	defer func() {
		if recover() == nil {
			t.Error("expected push-full panic")
		}
	}()
	b.Push(SBEntry{Line: 2})
}

// TestStoreBufferFIFO: drain order equals push order (property).
func TestStoreBufferFIFO(t *testing.T) {
	f := func(n uint8) bool {
		k := int(n%32) + 1
		b := NewStoreBuffer(k)
		for i := 0; i < k; i++ {
			b.Push(SBEntry{Txn: int64(i)})
		}
		for i := 0; i < k; i++ {
			if e, ok := b.Pop(); !ok || e.Txn != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Valid: "V", Owned: "O"} {
		if st.String() != want {
			t.Errorf("%v string wrong", st)
		}
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewArray(0, 4)
}
