// Command ratslitmus runs the litmus suite through both the
// programmer-centric race-classification model (Listing 7 of the paper)
// and the system-centric relaxed-execution model, reporting per-test
// verdicts under DRF0, DRF1, and DRFrlx, plus the Theorem 3.1 validation.
//
// Usage:
//
//	ratslitmus                   # full suite
//	ratslitmus -table1           # Table 1 (use cases and applications)
//	ratslitmus -theorem          # Theorem 3.1 validation only
//	ratslitmus -file t.litmus    # check a litmus file (with -witness for
//	                             # a concrete racy execution)
package main

import (
	"flag"
	"fmt"
	"os"

	"rats/internal/core"
	"rats/internal/litmus"
	"rats/internal/memmodel"
)

func main() {
	var (
		table1  = flag.Bool("table1", false, "print Table 1 and exit")
		theorem = flag.Bool("theorem", false, "run only the Theorem 3.1 validation")
		file    = flag.String("file", "", "check a single litmus file instead of the suite")
		witness = flag.Bool("witness", false, "with -file: print a witness execution for the first illegal race")
		infer   = flag.Bool("infer", false, "with -file: infer the cheapest legal atomic labelling")
	)
	flag.Parse()

	if *file != "" {
		checkFile(*file, *witness, *infer)
		return
	}

	suite := litmus.Suite()
	if *table1 {
		fmt.Println("Table 1: GPU relaxed atomic use cases")
		fmt.Printf("  %-28s %s\n", "category", "application")
		for _, tc := range suite {
			if tc.UseCase != "" {
				fmt.Printf("  %-28s %s\n", tc.UseCase, tc.App)
			}
		}
		return
	}

	fail := 0
	for _, tc := range suite {
		if !*theorem {
			fmt.Printf("%-26s %s\n", tc.Prog.Name, tc.Notes)
			for i, m := range core.Models() {
				v, err := memmodel.CheckProgram(tc.Prog, m)
				if err != nil {
					fmt.Fprintln(os.Stderr, "ratslitmus:", err)
					os.Exit(1)
				}
				status := "ok"
				if v.Legal != tc.Legal[i] {
					status = "MISMATCH"
					fail++
				}
				fmt.Printf("  %-8s legal=%-5v expected=%-5v %-9s %s\n",
					m, v.Legal, tc.Legal[i], status, raceSummary(v))
			}
		}
		rep, err := memmodel.ValidateTheorem(tc.Prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", err)
			os.Exit(1)
		}
		ok := !rep.Legal || rep.SystemSC
		status := "theorem holds"
		if !ok {
			status = "THEOREM VIOLATED"
			fail++
		}
		fmt.Printf("  %-8s system results=%d SC results=%d: %s\n", "sys", rep.SystemCount, rep.SCCount, status)
	}
	if fail > 0 {
		fmt.Printf("\n%d mismatches\n", fail)
		os.Exit(1)
	}
	fmt.Println("\nall litmus verdicts match and Theorem 3.1 holds on every legal test")
}

func raceSummary(v *memmodel.Verdict) string {
	if v.Legal {
		return ""
	}
	out := ""
	for _, k := range memmodel.RaceKinds() {
		if n := len(v.Races[k]); n > 0 {
			if out != "" {
				out += ", "
			}
			out += fmt.Sprintf("%d %s(s)", n, k)
		}
	}
	return out
}

// checkFile parses and checks one litmus file under all three models.
func checkFile(path string, witness, infer bool) {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		os.Exit(1)
	}
	p, err := litmus.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		os.Exit(1)
	}
	for _, m := range core.Models() {
		v, err := memmodel.CheckProgram(p, m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", err)
			os.Exit(1)
		}
		fmt.Println(v.Summary())
		if witness && !v.Legal {
			w, err := memmodel.FindWitness(p, m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ratslitmus:", err)
				os.Exit(1)
			}
			if w != nil {
				fmt.Println(w)
			}
		}
	}
	if infer {
		fmt.Println("\nannotatable sites:")
		for i, s := range memmodel.Sites(p) {
			fmt.Printf("  %d: %s\n", i, s)
		}
		labels, err := memmodel.InferLabels(p, memmodel.InferOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ratslitmus:", err)
			os.Exit(1)
		}
		if len(labels) == 0 {
			fmt.Println("no legal labelling exists (data races?)")
		} else {
			fmt.Printf("minimum-cost legal labellings (%d):\n", len(labels))
			for _, l := range labels {
				fmt.Println("  ", l)
			}
		}
	}

	rep, err := memmodel.ValidateTheorem(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ratslitmus:", err)
		os.Exit(1)
	}
	if rep.Legal {
		if rep.SystemSC {
			fmt.Println("system model: all relaxed executions SC (Theorem 3.1 holds)")
		} else {
			fmt.Println("system model: THEOREM VIOLATED — relaxed executions escape SC")
		}
	} else {
		fmt.Printf("system model: %d reachable results (illegal program; %d outside SC)\n",
			rep.SystemCount, len(rep.NonSCResults))
	}
}
